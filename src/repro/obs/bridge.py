"""Bridges folding pre-existing ad-hoc counters into the metrics registry.

PR 1 gave :class:`~repro.field.model.FieldModel` build/hit counters and the
sim radio its :class:`~repro.sim.radio.RadioStats`; both predate this layer
and keep their own state.  Rather than rewrite them, these bridges copy
their totals into the shared :class:`~repro.obs.metrics.MetricsRegistry`
as counter increments, so one metrics dump covers all telemetry.

Field stats are bridged as *deltas* against a
:meth:`~repro.field.model.FieldModelStats.snapshot` taken before the work
of interest — bridging the same model twice must not double-count, and a
model's counters keep accumulating across runs.  Radio stats are per-run
objects, so they bridge whole.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import OBS

__all__ = ["bridge_field_stats", "bridge_radio_stats"]

#: Metric names the bridges write; also referenced by docs and tests.
FIELD_BUILDS_METRIC = "field_model_builds_total"
FIELD_HITS_METRIC = "field_model_hits_total"
RADIO_SENT_METRIC = "radio_messages_sent_total"
RADIO_RECEIVED_METRIC = "radio_messages_received_total"
RADIO_DROPPED_METRIC = "radio_messages_dropped_total"


def bridge_field_stats(
    stats: Any, *, since: Any = None, metrics: MetricsRegistry | None = None
) -> None:
    """Fold FieldModel build/hit counters into the registry.

    Parameters
    ----------
    stats:
        A :class:`~repro.field.model.FieldModelStats` (or a
        :class:`~repro.field.model.FieldModel`, whose ``.stats`` is used).
    since:
        An earlier ``stats.snapshot()``; only the counts accrued since then
        are bridged.  ``None`` bridges the full totals — correct only for a
        model created inside the bridged stretch of work.
    metrics:
        Registry to write into; defaults to the global runtime's.
    """
    stats = getattr(stats, "stats", stats)
    if since is not None:
        stats = stats.diff(since)
    registry = OBS.metrics if metrics is None else metrics
    for kind, n in sorted(stats.builds.items()):
        if n:
            registry.counter(FIELD_BUILDS_METRIC, kind=str(kind)).inc(int(n))
    for kind, n in sorted(stats.hits.items()):
        if n:
            registry.counter(FIELD_HITS_METRIC, kind=str(kind)).inc(int(n))


def bridge_radio_stats(
    stats: Any, *, protocol: str = "", metrics: MetricsRegistry | None = None
) -> None:
    """Fold one radio run's sent/received/dropped totals into the registry.

    ``protocol`` labels the series (``"grid"``, ``"voronoi"``, ...); call
    once per finished protocol run — the whole totals are added each time.
    """
    stats = getattr(stats, "stats", stats)
    registry = OBS.metrics if metrics is None else metrics
    sent = stats.total_sent()
    received = stats.total_received()
    if sent:
        registry.counter(RADIO_SENT_METRIC, protocol=protocol).inc(sent)
    if received:
        registry.counter(RADIO_RECEIVED_METRIC, protocol=protocol).inc(received)
    if stats.dropped:
        registry.counter(RADIO_DROPPED_METRIC, protocol=protocol).inc(stats.dropped)
