"""Persistent run ledger: cross-run history and regression detection.

Every other pillar of :mod:`repro.obs` observes *one* invocation — the
tracer, registry, sampler and flight recorder all die with the process.
The paper's evaluation, though, is a *trajectory*: the same sweeps re-run
across seeds, k values and failure epochs and compared against each other.
This module gives the harness a memory between invocations:

* :class:`LedgerStore` — an append-only store of JSONL *segments* under
  ``.decor/ledger/`` (stdlib-only, like everything in ``repro.obs``).
  One structured row per figure/deploy/restore/bench invocation:

  - ``config`` + ``fingerprint`` — the semantic parameters of the run
    (series, k values, seeds, method, selection strategy, kernel) hashed
    canonically, so "same experiment" is a string comparison;
  - ``env`` — python/numpy versions, platform, cpu count, the relevant
    ``REPRO_*`` environment and the worker count.  Environment describes
    *where* a run happened, never *what* it computed, so it is masked by
    :func:`mask_row` alongside timing;
  - ``wall`` — staged wall timings (also masked);
  - ``counters`` / ``gauges`` / ``histograms`` — harvested from the
    :class:`~repro.obs.metrics.MetricsRegistry`, preferring the attached
    :class:`~repro.obs.sampler.MetricsSampler`'s rows when one exists:
    sample rows are byte-identical between serial and ``--workers N``
    runs (the :mod:`repro.obs.bridge` guarantee), so the harvest is too;
  - ``artifacts`` — SHA-256 digests of the figure JSON / flight record /
    sample sink the invocation wrote.

* :data:`LEDGER` — a :class:`RunLedger` null-object runtime mirroring
  :data:`~repro.obs.runtime.OBS`: off by default, enabled by
  ``REPRO_LEDGER=1`` (or ``=PATH``) or the CLI's ``--ledger [PATH]``.
  Disabled touchpoints cost one attribute check (OBS005 enforces the
  ``if LEDGER.enabled:`` guard; ``LEDGER.stage`` is exempt the same way
  ``OBS.span`` is — it returns a shared null context manager).

* a query/compare layer — :func:`diff_rows` renders config-aware deltas
  between two runs, and :func:`run_detectors` applies pluggable
  regression detectors (relative thresholds on wall medians and counter
  multisets, strict equality on determinism-relevant counters) against
  the median of a run's config-matching predecessors.  ``decor runs``
  is the CLI over both.

Determinism contract: two rows from the same config are **byte-identical
after masking** (:func:`mask_row` strips ``run_id``/``ts``/``env``/
``wall``) whether the run was serial or pooled.  ``tests/test_obs_ledger.
py`` and the CI ``ledger`` job hold this line.

Like the sampler, this module is DET002 wall-clock-exempt: time and
entropy here feed telemetry, never results.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import pathlib
import platform
import statistics
import sys
import time
import warnings
from dataclasses import dataclass
from types import TracebackType
from typing import Any, Callable, Iterable, Iterator

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampler import EXCLUDED_PREFIXES, MetricsSampler, series_key

__all__ = [
    "DEFAULT_LEDGER_ROOT",
    "EXACT_COUNTER_PREFIXES",
    "HARVEST_EXCLUDED_PREFIXES",
    "LEDGER",
    "LEDGER_VERSION",
    "LedgerStore",
    "MASKED_FIELDS",
    "RegressFinding",
    "RegressOptions",
    "RunLedger",
    "artifact_digest",
    "baseline_rows",
    "build_row",
    "capture_environment",
    "config_fingerprint",
    "diff_is_clean",
    "diff_rows",
    "diff_sections",
    "harvest_metrics",
    "mask_row",
    "register_detector",
    "render_diff",
    "render_sections",
    "run_detectors",
    "sections_from_sample_rows",
]

#: Row schema version stamped into every ledger row.
LEDGER_VERSION = 1

#: Where the ledger lives unless ``--ledger PATH`` / ``REPRO_LEDGER=PATH``
#: says otherwise (relative to the working directory, like ``.git``).
DEFAULT_LEDGER_ROOT = ".decor/ledger"

#: Rows per JSONL segment file before rolling over to a new segment.
SEGMENT_MAX_ROWS = 512

#: Registry prefixes excluded from harvested counters/gauges on the
#: registry-dump fallback path: the sampler's own exclusions (build
#: counters depend on which process first touched a seed; profile buckets
#: are wall clock) plus series whose *values* are schedule-dependent —
#: pool bookkeeping exists only in pooled runs, the cache hit/miss split
#: depends on who computed a cell, and the label-cap overflow counter
#: depends on registration order.  The sampler path needs none of this
#: reasoning: sample rows are byte-identical serial vs pooled already.
HARVEST_EXCLUDED_PREFIXES: tuple[str, ...] = EXCLUDED_PREFIXES + (
    "parallel_",
    "deployment_cache_",
    "obs_labels_dropped_total",
)

#: Fields stripped by :func:`mask_row`: identity, wall-clock and
#: environment — everything that may legitimately differ between two runs
#: of the same config (``env`` carries the worker count, which is an
#: execution detail, not an experiment parameter).
MASKED_FIELDS: tuple[str, ...] = ("run_id", "ts", "env", "wall")

#: Counter-key prefixes the strict-equality detector gates by default:
#: deterministic by construction (the lazy/scan bit-identity guarantee),
#: so *any* drift is a regression, not noise.
EXACT_COUNTER_PREFIXES: tuple[str, ...] = (
    "selection_",
    "decor_placements_total",
    "restoration_",
)

#: Environment variables captured into a row's ``env`` section.
CAPTURED_ENV_VARS: tuple[str, ...] = (
    "REPRO_CHECKS",
    "REPRO_FIELD_BACKEND",
    "REPRO_FLIGHTREC",
    "REPRO_KERNEL",
    "REPRO_LEDGER",
    "REPRO_OBS",
    "REPRO_OBS_SAMPLE",
    "REPRO_RESTORE",
    "REPRO_SCALE",
    "REPRO_SELECTION",
)

#: Env hook for the CI regression demo and detector self-tests:
#: ``REPRO_LEDGER_INFLATE="<key-prefix>:<factor>"`` multiplies every
#: harvested counter whose flat key starts with the prefix.  This is the
#: sanctioned way to fake a regression end-to-end — the row is recorded
#: inflated, and ``decor runs regress`` must catch it.
INFLATE_ENV_VAR = "REPRO_LEDGER_INFLATE"


# ----------------------------------------------------------------------
# row construction
# ----------------------------------------------------------------------
def config_fingerprint(config: dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON encoding of ``config``.

    Canonical means sorted keys and compact separators, so two configs
    with equal content always hash equal regardless of insertion order.

    >>> a = config_fingerprint({"k": [1, 2], "method": "grid"})
    >>> b = config_fingerprint({"method": "grid", "k": [1, 2]})
    >>> a == b and len(a) == 64
    True
    """
    blob = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def capture_environment(**extra: object) -> dict[str, Any]:
    """Where this run happened: interpreter, platform, env, workers.

    Everything here is masked by :func:`mask_row` — environment explains
    a wall-clock difference, it never excuses a counter difference.
    """
    try:
        import numpy

        numpy_version = str(numpy.__version__)
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = None
    env = {
        name: os.environ[name]
        for name in CAPTURED_ENV_VARS
        if os.environ.get(name) not in (None, "")
    }
    out: dict[str, Any] = {
        "python": platform.python_version(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "argv0": pathlib.Path(sys.argv[0]).name if sys.argv else "",
        "repro_env": env,
    }
    out.update(extra)
    return out


def harvest_metrics(
    registry: MetricsRegistry | None,
    sampler: MetricsSampler | None = None,
    *,
    exclude: tuple[str, ...] = HARVEST_EXCLUDED_PREFIXES,
) -> dict[str, Any]:
    """Terminal counters/gauges/histograms for a ledger row.

    Prefers the sampler's rows when one is attached: counter and
    histogram deltas are summed, gauges keep their last reading — the
    exact aggregation :func:`repro.obs.export.registry_from_samples`
    performs, computed over rows that are byte-identical between serial
    and pooled runs.  Falls back to the registry dump (minus ``exclude``
    prefixes, which are process-local or schedule-dependent) when no
    sampler exists.
    """
    if sampler is not None:
        return sections_from_sample_rows(sampler.rows(), exclude=exclude)
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict[str, float]] = {}
    if registry is not None:
        for name, labels, kind, payload in registry.dump_state():
            flat = _flat_key(name, labels)
            if flat.startswith(exclude):
                continue
            if kind == "counter":
                counters[flat] = payload["value"]
            elif kind == "gauge":
                gauges[flat] = payload["value"]
            elif kind == "histogram":
                histograms[flat] = {
                    "count": int(payload["count"]),
                    "sum": float(payload["sum"]),
                }
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


def sections_from_sample_rows(
    rows: Iterable[dict[str, Any]],
    *,
    exclude: tuple[str, ...] = (),
) -> dict[str, Any]:
    """Aggregate raw sample rows into counter/gauge/histogram sections.

    The same fold :func:`repro.obs.export.registry_from_samples` does —
    counters and histograms sum their deltas, gauges keep the last
    reading — but into plain flat-keyed dicts, which is what ledger rows
    and the ``decor obs summarize --diff`` renderer both consume.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict[str, float]] = {}
    for row in rows:
        if row.get("type") != "sample":
            continue
        for key, entry in row.get("series", {}).items():
            if exclude and key.startswith(exclude):
                continue
            kind = entry.get("k")
            if kind == "counter":
                counters[key] = counters.get(key, 0) + entry["v"]
            elif kind == "gauge":
                gauges[key] = entry["v"]
            elif kind == "histogram":
                h = histograms.setdefault(key, {"count": 0, "sum": 0.0})
                h["count"] += int(entry["count"])
                h["sum"] += float(entry["sum"])
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


def _flat_key(name: str, labels: Iterable[tuple[str, object]]) -> str:
    return series_key(name, labels)


def artifact_digest(path: str | os.PathLike[str]) -> str:
    """SHA-256 hex digest of a written artifact (figure JSON, sink, ...)."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(65536), b""):
            h.update(chunk)
    return h.hexdigest()


def build_row(
    kind: str,
    label: str,
    config: dict[str, Any],
    *,
    metrics: dict[str, Any] | None = None,
    wall: dict[str, float] | None = None,
    artifacts: dict[str, str] | None = None,
    env: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble one ledger row (without appending it anywhere).

    ``artifacts`` maps artifact names to file paths; existing files are
    digested, missing ones recorded as ``null`` digests.  Only the file
    *name* is kept — the directory it landed in is an execution detail,
    and recording it would make otherwise-identical runs (same artifact
    bytes, different tmp dirs) diff dirty.  ``run_id`` is the config
    fingerprint's head plus a nanosecond stamp — unique, sortable, and
    greppable back to its config family.
    """
    fingerprint = config_fingerprint(config)
    digested: dict[str, dict[str, Any]] = {}
    for name, path in sorted((artifacts or {}).items()):
        digested[name] = {
            "file": pathlib.Path(path).name,
            "sha256": artifact_digest(path) if os.path.exists(path) else None,
        }
    sections = metrics or {"counters": {}, "gauges": {}, "histograms": {}}
    return {
        "v": LEDGER_VERSION,
        "kind": kind,
        "label": label,
        "run_id": f"{fingerprint[:12]}-{time.time_ns():016x}",
        "ts": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "fingerprint": fingerprint,
        "config": config,
        "env": env if env is not None else capture_environment(),
        "wall": dict(sorted((wall or {}).items())),
        "counters": sections["counters"],
        "gauges": sections["gauges"],
        "histograms": sections["histograms"],
        "artifacts": digested,
    }


def mask_row(row: dict[str, Any]) -> dict[str, Any]:
    """The row minus identity/timing/environment — the determinism view.

    Two runs of the same config must produce byte-identical masked rows
    (``json.dumps(..., sort_keys=True)``), serial or pooled.
    """
    return {k: v for k, v in row.items() if k not in MASKED_FIELDS}


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class LedgerStore:
    """Append-only JSONL segments under one directory.

    Segments roll over every :data:`SEGMENT_MAX_ROWS` rows so no single
    file grows unboundedly and old history stays cheap to ship around.
    Reads are tolerant: a corrupt line (torn write, manual edit) is
    skipped with a :class:`UserWarning` naming the file and line — one
    bad row must never take the history down with it.
    """

    def __init__(
        self,
        root: str | os.PathLike[str] = DEFAULT_LEDGER_ROOT,
        *,
        segment_max_rows: int = SEGMENT_MAX_ROWS,
    ) -> None:
        if segment_max_rows < 1:
            raise ObservabilityError(
                f"segment_max_rows must be >= 1, got {segment_max_rows}"
            )
        self.root = pathlib.Path(root)
        self.segment_max_rows = segment_max_rows

    def segments(self) -> list[pathlib.Path]:
        """Segment files, oldest first."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("segment-*.jsonl"))

    def _open_segment(self) -> pathlib.Path:
        segments = self.segments()
        if segments:
            last = segments[-1]
            with open(last, encoding="utf-8") as fh:
                n = sum(1 for _ in fh)
            if n < self.segment_max_rows:
                return last
            index = int(last.stem.split("-")[1]) + 1
        else:
            index = 0
        return self.root / f"segment-{index:06d}.jsonl"

    def append(self, row: dict[str, Any]) -> pathlib.Path:
        """Append one row; returns the segment it landed in."""
        self.root.mkdir(parents=True, exist_ok=True)
        segment = self._open_segment()
        with open(segment, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
        return segment

    def iter_rows(self) -> Iterator[dict[str, Any]]:
        """Every row, oldest first; corrupt lines skipped with a warning."""
        for segment in self.segments():
            with open(segment, encoding="utf-8") as fh:
                for lineno, line in enumerate(fh, start=1):
                    if not line.strip():
                        continue
                    try:
                        row = json.loads(line)
                    except json.JSONDecodeError as exc:
                        warnings.warn(
                            f"{segment}:{lineno}: skipping corrupt ledger "
                            f"line ({exc})",
                            stacklevel=2,
                        )
                        continue
                    if not isinstance(row, dict) or "kind" not in row:
                        warnings.warn(
                            f"{segment}:{lineno}: skipping non-row object",
                            stacklevel=2,
                        )
                        continue
                    yield row

    def rows(self) -> list[dict[str, Any]]:
        return list(self.iter_rows())

    def resolve(self, ref: str) -> dict[str, Any]:
        """A row by reference: run-id prefix, ``latest`` or ``latest~N``.

        Raises :class:`~repro.errors.ObservabilityError` when the
        reference matches no run or is ambiguous.
        """
        rows = self.rows()
        if not rows:
            raise ObservabilityError(f"ledger at {self.root} is empty")
        if ref == "latest" or ref.startswith("latest~"):
            back = int(ref.split("~")[1]) if "~" in ref else 0
            if back >= len(rows):
                raise ObservabilityError(
                    f"{ref}: only {len(rows)} runs recorded"
                )
            return rows[-1 - back]
        matches = [
            r for r in rows if str(r.get("run_id", "")).startswith(ref)
        ]
        if not matches:
            raise ObservabilityError(f"no run matches {ref!r}")
        if len(matches) > 1:
            ids = ", ".join(str(r["run_id"]) for r in matches[:4])
            raise ObservabilityError(
                f"{ref!r} is ambiguous ({len(matches)} matches: {ids}...)"
            )
        return matches[0]


# ----------------------------------------------------------------------
# the runtime (null-object, like OBS/FREC)
# ----------------------------------------------------------------------
class _NullStage:
    """Shared no-op stage context when the ledger is disabled."""

    __slots__ = ()

    def __enter__(self) -> _NullStage:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False


_NULL_STAGE = _NullStage()


class _Stage:
    """Accumulates one named wall-clock stage into the ledger runtime."""

    __slots__ = ("_ledger", "_name", "_t0")

    def __init__(self, ledger: RunLedger, name: str) -> None:
        self._ledger = ledger
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> _Stage:
        self._t0 = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        elapsed = time.perf_counter() - self._t0
        stages = self._ledger._stages
        stages[self._name] = stages.get(self._name, 0.0) + elapsed
        return False


class RunLedger:
    """Switchable facade over a :class:`LedgerStore`.

    Mirrors the :data:`~repro.obs.runtime.OBS` contract: disabled (the
    default) every touchpoint pays one attribute check and records
    nothing; enabled, :meth:`record_run` harvests the obs runtime and
    appends one row.  ``stage`` is the span-shaped touchpoint — a null
    context manager when disabled, so it needs no guard (OBS005 exempts
    it the way OBS001 exempts ``OBS.span``).

    >>> ledger = RunLedger()
    >>> ledger.enabled
    False
    >>> ledger.record_run("test", "noop", {}) is None
    True
    """

    def __init__(self) -> None:
        self.enabled = False
        self.store: LedgerStore | None = None
        self._stages: dict[str, float] = {}

    def enable(self, path: str | os.PathLike[str] | None = None) -> None:
        """Attach a store (``path`` or :data:`DEFAULT_LEDGER_ROOT`)."""
        self.store = LedgerStore(path if path is not None else DEFAULT_LEDGER_ROOT)
        self._stages = {}
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Disable and detach (test teardown)."""
        self.enabled = False
        self.store = None
        self._stages = {}

    # ------------------------------------------------------------------
    def stage(self, name: str) -> _Stage | _NullStage:
        """Time a named phase of the current invocation (``with`` block)."""
        if not self.enabled:
            return _NULL_STAGE
        return _Stage(self, name)

    def stage_walls(self) -> dict[str, float]:
        """Stage seconds accumulated since :meth:`enable`/:meth:`record_run`."""
        return dict(self._stages)

    # ------------------------------------------------------------------
    def record_run(
        self,
        kind: str,
        label: str,
        config: dict[str, Any],
        *,
        wall: dict[str, float] | None = None,
        artifacts: dict[str, str] | None = None,
        registry: MetricsRegistry | None = None,
        sampler: MetricsSampler | None = None,
        env: dict[str, Any] | None = None,
    ) -> dict[str, Any] | None:
        """Harvest the obs runtime and append one row; returns the row.

        Call sites must sit under ``if LEDGER.enabled:`` (OBS005) — the
        internal guard here is belt-and-braces, not licence to skip it.
        ``registry``/``sampler`` default to the live :data:`OBS` runtime's.
        """
        if not self.enabled or self.store is None:
            return None
        if registry is None and sampler is None:
            from repro.obs.runtime import OBS

            registry = OBS.metrics
            sampler = OBS.sampler
        metrics = harvest_metrics(registry, sampler)
        _apply_inflation(metrics["counters"])
        merged_wall = dict(self._stages)
        merged_wall.update(wall or {})
        self._stages = {}
        row = build_row(
            kind,
            label,
            config,
            metrics=metrics,
            wall=merged_wall,
            artifacts=artifacts,
            env=env,
        )
        self.store.append(row)
        return row


def _apply_inflation(counters: dict[str, float]) -> None:
    """Apply the ``REPRO_LEDGER_INFLATE`` self-test hook, if set."""
    spec = os.environ.get(INFLATE_ENV_VAR, "")
    if not spec:
        return
    prefix, _, factor_text = spec.partition(":")
    try:
        factor = float(factor_text)
    except ValueError as exc:
        raise ObservabilityError(
            f"{INFLATE_ENV_VAR} must look like '<key-prefix>:<factor>', "
            f"got {spec!r}"
        ) from exc
    for key in list(counters):
        if key.startswith(prefix):
            counters[key] = type(counters[key])(counters[key] * factor)


#: The process-wide run ledger (off by default, like OBS and FREC).
LEDGER = RunLedger()

_ledger_env = os.environ.get("REPRO_LEDGER", "")
if _ledger_env not in ("", "0"):  # pragma: no cover - env-dependent
    LEDGER.enable(None if _ledger_env == "1" else _ledger_env)


# ----------------------------------------------------------------------
# diffing
# ----------------------------------------------------------------------
def diff_sections(
    a: dict[str, dict[str, Any]], b: dict[str, dict[str, Any]]
) -> dict[str, dict[str, tuple[Any, Any]]]:
    """Per-section ``{key: (value_a, value_b)}`` for every differing key.

    Sections are ``counters``/``gauges``/``histograms``/``wall``-shaped
    flat mappings; a key missing on one side diffs against ``None``.
    """
    out: dict[str, dict[str, tuple[Any, Any]]] = {}
    for section in sorted(set(a) | set(b)):
        sa = a.get(section, {})
        sb = b.get(section, {})
        delta = {
            key: (sa.get(key), sb.get(key))
            for key in sorted(set(sa) | set(sb))
            if sa.get(key) != sb.get(key)
        }
        if delta:
            out[section] = delta
    return out


def diff_rows(a: dict[str, Any], b: dict[str, Any]) -> dict[str, Any]:
    """Config-aware diff of two ledger rows.

    ``semantic`` covers the masked view (counters, gauges, histograms,
    artifact digests, config) — any entry there breaks the determinism
    contract when the fingerprints match.  ``informational`` covers wall
    timings, which legitimately vary run to run.
    """
    fp_a = a.get("fingerprint")
    fp_b = b.get("fingerprint")
    semantic = diff_sections(
        {
            "config": _flatten(a.get("config", {})),
            "counters": a.get("counters", {}),
            "gauges": a.get("gauges", {}),
            "histograms": _flatten(a.get("histograms", {})),
            "artifacts": _artifact_digests(a),
        },
        {
            "config": _flatten(b.get("config", {})),
            "counters": b.get("counters", {}),
            "gauges": b.get("gauges", {}),
            "histograms": _flatten(b.get("histograms", {})),
            "artifacts": _artifact_digests(b),
        },
    )
    informational = diff_sections(
        {"wall": a.get("wall", {})}, {"wall": b.get("wall", {})}
    )
    return {
        "a": a.get("run_id"),
        "b": b.get("run_id"),
        "fingerprint_match": fp_a == fp_b,
        "semantic": semantic,
        "informational": informational,
    }


def _flatten(mapping: dict[str, Any], prefix: str = "") -> dict[str, Any]:
    """Nested dicts to dotted flat keys (lists compare as JSON text)."""
    flat: dict[str, Any] = {}
    for key, value in mapping.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, f"{name}."))
        elif isinstance(value, (list, tuple)):
            flat[name] = json.dumps(list(value))
        else:
            flat[name] = value
    return flat


def _artifact_digests(row: dict[str, Any]) -> dict[str, Any]:
    return {
        name: meta.get("sha256")
        for name, meta in row.get("artifacts", {}).items()
    }


def diff_is_clean(diff: dict[str, Any]) -> bool:
    """True when the semantic (masked-view) diff is empty."""
    return not diff["semantic"]


def render_diff(
    diff: dict[str, Any], *, label_a: str = "a", label_b: str = "b"
) -> str:
    """Human-readable diff report (what ``decor runs diff`` prints)."""
    lines = [
        f"{label_a}: {diff.get('a')}",
        f"{label_b}: {diff.get('b')}",
        "fingerprint: "
        + ("match" if diff.get("fingerprint_match") else "DIFFERENT CONFIG"),
    ]
    if diff_is_clean(diff):
        lines.append("semantic: identical (masked rows match)")
    else:
        lines.append("semantic differences:")
        lines.extend(render_sections(diff["semantic"], label_a, label_b))
    info = diff.get("informational", {})
    if info:
        lines.append("informational (wall timings):")
        lines.extend(render_sections(info, label_a, label_b))
    return "\n".join(lines) + "\n"


def render_sections(
    sections: dict[str, dict[str, tuple[Any, Any]]],
    label_a: str,
    label_b: str,
) -> list[str]:
    out: list[str] = []
    for section, delta in sections.items():
        out.append(f"  [{section}]")
        for key, (va, vb) in delta.items():
            out.append(f"    {key}: {_fmt(va)} -> {_fmt(vb)}{_ratio(va, vb)}")
    return out


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return "absent" if value is None else str(value)


def _ratio(va: Any, vb: Any) -> str:
    if (
        isinstance(va, (int, float))
        and isinstance(vb, (int, float))
        and va
        and math.isfinite(va)
        and math.isfinite(vb)
    ):
        return f"  ({(vb - va) / va:+.1%})"
    return ""


# ----------------------------------------------------------------------
# regression detectors
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RegressOptions:
    """Knobs shared by the built-in detectors."""

    #: Relative tolerance for the counter/gauge multiset detector.
    tolerance: float = 0.1
    #: Relative tolerance for wall-stage medians (walls are noisy).
    wall_tolerance: float = 0.5
    #: Counter-key prefixes held to strict equality.
    exact_prefixes: tuple[str, ...] = EXACT_COUNTER_PREFIXES
    #: Detector names to run (``None`` = all registered).
    detectors: tuple[str, ...] | None = None


@dataclass(frozen=True)
class RegressFinding:
    """One detector hit: which key drifted, how far, caught by whom."""

    detector: str
    key: str
    value: Any
    baseline: Any
    detail: str

    def format(self) -> str:
        return (
            f"[{self.detector}] {self.key}: {_fmt(self.value)} "
            f"vs baseline {_fmt(self.baseline)} — {self.detail}"
        )


Detector = Callable[
    [dict[str, Any], list[dict[str, Any]], RegressOptions],
    list[RegressFinding],
]

#: Pluggable detector registry; extend via :func:`register_detector`.
DETECTORS: dict[str, Detector] = {}


def register_detector(name: str, fn: Detector) -> Detector:
    """Register a detector under ``name`` (later wins, like routes)."""
    DETECTORS[name] = fn
    return fn


def _median_of(values: list[float]) -> float:
    return float(statistics.median(values))


def _detect_exact_counters(
    run: dict[str, Any],
    baseline: list[dict[str, Any]],
    options: RegressOptions,
) -> list[RegressFinding]:
    """Strict equality on determinism-relevant counters.

    Compares against the most recent baseline row: these series are
    bit-identity-gated elsewhere, so one changed value is a finding even
    with a single predecessor.
    """
    findings: list[RegressFinding] = []
    prev = baseline[-1]
    keys = set(run.get("counters", {})) | set(prev.get("counters", {}))
    for key in sorted(keys):
        if not key.startswith(options.exact_prefixes):
            continue
        now = run.get("counters", {}).get(key)
        was = prev.get("counters", {}).get(key)
        if now != was:
            findings.append(
                RegressFinding(
                    "exact-counters",
                    key,
                    now,
                    was,
                    "determinism-relevant counter must match exactly",
                )
            )
    return findings


def _detect_counter_drift(
    run: dict[str, Any],
    baseline: list[dict[str, Any]],
    options: RegressOptions,
) -> list[RegressFinding]:
    """Relative threshold on counter/gauge multisets vs baseline medians."""
    findings: list[RegressFinding] = []
    for section in ("counters", "gauges"):
        current = run.get(section, {})
        for key in sorted(current):
            if section == "counters" and key.startswith(
                options.exact_prefixes
            ):
                continue  # the exact detector owns these
            history = [
                r[section][key]
                for r in baseline
                if key in r.get(section, {})
            ]
            if not history:
                continue
            median = _median_of([float(v) for v in history])
            value = float(current[key])
            bound = options.tolerance * max(abs(median), 1.0)
            if abs(value - median) > bound:
                findings.append(
                    RegressFinding(
                        "counter-drift",
                        key,
                        current[key],
                        median,
                        f"moved more than {options.tolerance:.0%} from the "
                        f"median of {len(history)} matching run(s)",
                    )
                )
    return findings


def _detect_wall_regression(
    run: dict[str, Any],
    baseline: list[dict[str, Any]],
    options: RegressOptions,
) -> list[RegressFinding]:
    """Relative threshold on wall-stage medians (slower only — a faster
    run is a win, not a regression)."""
    findings: list[RegressFinding] = []
    current = run.get("wall", {})
    for key in sorted(current):
        history = [
            float(r["wall"][key])
            for r in baseline
            if key in r.get("wall", {})
        ]
        if not history:
            continue
        median = _median_of(history)
        value = float(current[key])
        if value > median * (1.0 + options.wall_tolerance) + 0.05:
            findings.append(
                RegressFinding(
                    "wall-regression",
                    f"wall.{key}",
                    value,
                    median,
                    f"slower than {1.0 + options.wall_tolerance:g}x the "
                    f"median of {len(history)} matching run(s)",
                )
            )
    return findings


register_detector("exact-counters", _detect_exact_counters)
register_detector("counter-drift", _detect_counter_drift)
register_detector("wall-regression", _detect_wall_regression)


def baseline_rows(
    rows: list[dict[str, Any]],
    run: dict[str, Any],
    *,
    window: int = 5,
) -> list[dict[str, Any]]:
    """Up to ``window`` config-matching predecessors of ``run``.

    Matching means same ``kind``, ``label`` and ``fingerprint``; rows at
    or after ``run`` itself (by position) are excluded.
    """
    run_id = run.get("run_id")
    out: list[dict[str, Any]] = []
    for row in rows:
        if row.get("run_id") == run_id:
            break
        if (
            row.get("kind") == run.get("kind")
            and row.get("label") == run.get("label")
            and row.get("fingerprint") == run.get("fingerprint")
        ):
            out.append(row)
    return out[-window:]


def run_detectors(
    run: dict[str, Any],
    baseline: list[dict[str, Any]],
    options: RegressOptions | None = None,
) -> list[RegressFinding]:
    """Apply the registered detectors; empty baseline finds nothing."""
    opts = options or RegressOptions()
    if not baseline:
        return []
    names = opts.detectors if opts.detectors is not None else tuple(DETECTORS)
    findings: list[RegressFinding] = []
    for name in names:
        try:
            detector = DETECTORS[name]
        except KeyError as exc:
            raise ObservabilityError(
                f"unknown detector {name!r}; registered: {sorted(DETECTORS)}"
            ) from exc
        findings.extend(detector(run, baseline, opts))
    return findings
