"""Lightweight tracing: nested spans and point events in a ring buffer.

A :class:`Tracer` records two kinds of entries:

* **spans** — ``with tracer.span("series", k=3):`` blocks timed with
  ``perf_counter``; spans nest, and every record carries its ``id``,
  ``parent`` id and ``depth`` so the figure → series → k → placement
  hierarchy of a sweep is reconstructible from the flat stream;
* **events** — ``tracer.event("placement", point=17, benefit=5.0)``
  zero-duration marks attached to the currently open span.

Entries land in a bounded ring buffer (oldest dropped first, with a
``dropped`` count) as plain dicts, exported as JSON lines — one record per
line, greppable and streamable, no schema registry needed.  Span records
are appended when the span *closes*, so a trace file lists children before
their parents (the usual post-order of tracing backends).

The tracer assumes single-threaded, well-nested use — the same assumption
the rest of the reproduction makes.  Attribute values are scrubbed to
JSON-safe types at record time (NumPy scalars unwrapped, arrays listed,
non-finite floats stringified) so exports never fail late.
"""

from __future__ import annotations

import json
import math
import os
from collections import deque
from time import perf_counter
from types import TracebackType

import numpy as np

from repro.errors import ObservabilityError

__all__ = ["Span", "Tracer", "scrub"]

#: Default ring-buffer capacity (records, spans + events).
DEFAULT_CAPACITY = 65536


def scrub(value: object) -> object:
    """Coerce an attribute value to a JSON-serialisable equivalent.

    NumPy scalars unwrap to Python scalars, arrays become lists, non-finite
    floats become the strings ``"nan"`` / ``"inf"`` / ``"-inf"`` (plain JSON
    has no representation for them), and anything unrecognised falls back to
    ``repr`` — a trace record must never be the thing that crashes a run.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        v = float(value)
        if math.isfinite(v):
            return v
        return "nan" if math.isnan(v) else ("inf" if v > 0 else "-inf")
    if value is None or isinstance(value, str):
        return value
    if isinstance(value, np.ndarray):
        return [scrub(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): scrub(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [scrub(v) for v in value]
    return repr(value)


class Span:
    """One timed, attributed block; also its own context manager.

    Created by :meth:`Tracer.span`; entering pushes it on the tracer's span
    stack and starts the clock, exiting records it.  :meth:`set` attaches
    result attributes discovered while the span is open (e.g. the number of
    nodes a placement run ended up adding).
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id", "depth", "_tracer", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.name = str(name)
        self.attrs = attrs
        self._tracer = tracer
        self.span_id = -1
        self.parent_id: int | None = None
        self.depth = 0
        self._t0 = 0.0

    def set(self, **attrs: object) -> "Span":
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.parent_id = tracer._stack[-1] if tracer._stack else None
        self.depth = len(tracer._stack)
        self.span_id = tracer._take_id()
        tracer._stack.append(self.span_id)
        self._t0 = perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        duration = perf_counter() - self._t0
        tracer = self._tracer
        if not tracer._stack or tracer._stack[-1] != self.span_id:
            raise ObservabilityError(
                f"span {self.name!r} closed out of order; spans must nest"
            )
        tracer._stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        tracer._append(
            {
                "type": "span",
                "name": self.name,
                "id": self.span_id,
                "parent": self.parent_id,
                "depth": self.depth,
                "t0": self._t0 - tracer._origin,
                "dur": duration,
                "attrs": {k: scrub(v) for k, v in self.attrs.items()},
            }
        )
        tracer.n_spans += 1
        return False


class Tracer:
    """Span/event recorder over a bounded ring buffer.

    Parameters
    ----------
    capacity:
        Maximum records retained; older records are dropped (and counted in
        :attr:`dropped`) once the buffer is full, so a tracer can stay
        attached to an arbitrarily long run with bounded memory.

    Examples
    --------
    >>> tracer = Tracer()
    >>> with tracer.span("figure", figure="fig08"):
    ...     with tracer.span("series", series="centralized") as sp:
    ...         tracer.event("placement", point=3, benefit=5.0)
    ...         _ = sp.set(placed=1)
    >>> [r["name"] for r in tracer.records()]   # children close first
    ['placement', 'series', 'figure']
    >>> tracer.records()[1]["attrs"] == {"series": "centralized", "placed": 1}
    True
    >>> (tracer.n_spans, tracer.n_events, tracer.dropped)
    (2, 1, 0)
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ObservabilityError(f"trace capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._buffer: deque[dict] = deque(maxlen=self.capacity)
        self._stack: list[int] = []
        self._ids = 0
        self._origin = perf_counter()
        self.n_spans = 0
        self.n_events = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    def _take_id(self) -> int:
        self._ids += 1
        return self._ids

    def _append(self, record: dict) -> None:
        if len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(record)

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object) -> Span:
        """A context manager timing one named, attributed block."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: object) -> None:
        """Record a zero-duration event under the currently open span."""
        self._append(
            {
                "type": "event",
                "name": str(name),
                "span": self._stack[-1] if self._stack else None,
                "t": perf_counter() - self._origin,
                "attrs": {k: scrub(v) for k, v in attrs.items()},
            }
        )
        self.n_events += 1

    @property
    def current_depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    def __len__(self) -> int:
        return len(self._buffer)

    def records(self) -> list[dict]:
        """The retained records, oldest first (a copy; safe to mutate)."""
        return list(self._buffer)

    def clear(self) -> None:
        """Drop all retained records and reset the counters (open spans stay)."""
        self._buffer.clear()
        self.n_spans = 0
        self.n_events = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # cross-process aggregation
    # ------------------------------------------------------------------
    def absorb(
        self, records: "list[dict] | Tracer", *, dropped: int = 0
    ) -> int:
        """Graft another tracer's :meth:`records` under the open span.

        Worker processes run their own tracer; the parent folds the shipped
        records back in with this method.  Span ids are remapped into this
        tracer's id space (two passes, because span records appear in
        post-order — a child's record precedes its parent's, so the parent's
        new id must exist before links are rewritten).  Top-level worker
        spans — and any record whose parent fell out of the worker's ring
        buffer — are re-parented under the currently open span here, and
        depths shift accordingly.  Timestamps stay relative to the *worker's*
        origin; within one absorbed batch they remain mutually consistent.

        ``records`` may be another :class:`Tracer` directly, in which case
        its ring-buffer overflow count carries over automatically — records
        the worker already lost must stay counted as lost at the parent,
        or a merged trace would silently claim completeness.  When passing
        a plain record list, propagate the source's count via ``dropped=``
        (as :func:`repro.obs.bridge.merge_worker_obs` does from the shipped
        payload).

        Returns the number of records absorbed.

        >>> parent, worker = Tracer(), Tracer()
        >>> with worker.span("cell", series="grid-small"):
        ...     worker.event("placement", point=3)
        >>> with parent.span("figure", figure="fig08"):
        ...     _ = parent.absorb(worker.records())
        >>> [(r["name"], r.get("depth")) for r in parent.records()]
        [('placement', None), ('cell', 1), ('figure', 0)]
        >>> parent.records()[1]["parent"] == parent.records()[2]["id"]
        True
        >>> overflowing = Tracer(capacity=1)
        >>> for i in range(3):
        ...     overflowing.event("tick", i=i)
        >>> _ = parent.absorb(overflowing)
        >>> parent.dropped
        2
        """
        if isinstance(records, Tracer):
            if records is self:
                raise ObservabilityError("a tracer cannot absorb itself")
            dropped += records.dropped
            records = records.records()
        idmap: dict[int, int] = {}
        for rec in records:
            if rec.get("type") == "span":
                idmap[rec["id"]] = self._take_id()
        graft = self._stack[-1] if self._stack else None
        base_depth = len(self._stack)
        for rec in records:
            rec = dict(rec)
            if rec.get("type") == "span":
                rec["id"] = idmap[rec["id"]]
                parent = rec.get("parent")
                rec["parent"] = idmap[parent] if parent in idmap else graft
                rec["depth"] = int(rec.get("depth", 0)) + base_depth
                self.n_spans += 1
            else:
                span = rec.get("span")
                rec["span"] = idmap[span] if span in idmap else graft
                self.n_events += 1
            self._append(rec)
        self.dropped += int(dropped)
        return len(records)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """The retained records as JSON lines (one record per line)."""
        return "\n".join(
            json.dumps(rec, sort_keys=True, allow_nan=False) for rec in self._buffer
        )

    def write_jsonl(self, path: str | os.PathLike) -> int:
        """Write the records to ``path`` as JSON lines; returns record count."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as fh:
            if text:
                fh.write(text + "\n")
        return len(self._buffer)
