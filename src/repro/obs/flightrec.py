"""Protocol flight recorder: causal, per-node structured event logs.

Where :mod:`repro.obs.trace` answers *"where did the wall-clock go?"*, the
flight recorder answers the distributed-systems question the DECOR
protocols raise: **which node said what to whom, when (in simulation time),
and why**.  It is a second null-object runtime next to :data:`~repro.obs.OBS`
— the module-level :data:`FREC` singleton is off by default and every
instrumented touchpoint pays one attribute check (the OBS003 lint rule
enforces the ``if FREC.enabled:`` guard discipline, and the benchmark gate
in ``benchmarks/test_bench_obs_overhead.py`` bounds the disabled cost).

Record model
------------
A recording is a JSON-lines stream of four record types:

``header``
    At most one, first: who produced the stream and — when the producer is
    replayable (the CLI, :func:`repro.obs.replay.record_protocol_run`) —
    the ``entry``/``params`` needed to re-execute it.
``begin`` / ``end``
    Delimit one *run block*: one protocol or placement execution
    (``grid``, ``voronoi``, ``restoration``, ``grid_decor``, ...).  Blocks
    never nest and carry a 1-based ``run`` number; all per-run state
    (event ids, sequence numbers, Lamport clocks) is **run-local**, which
    is what makes a parallel sweep's merged stream byte-identical to the
    serial stream: blocks are self-contained and concatenate.
``event``
    One thing one node did.  Fields:

    ===========  ====================================================
    ``seq``      0-based position within the run block
    ``id``       run-local event id (== seq; kept separate for clarity)
    ``t``        simulation time (or round number for analytic runs)
    ``node``     acting node id (cell/site id for analytic runs)
    ``kind``     ``send``/``deliver``/``drop``/``timer_set``/
                 ``timer_fire``/``start``/``fail``/``placement``/
                 ``elected``/``suspect``/``rescind``/``handoff``/...
    ``cause``    event id of the message delivery or timer firing that
                 triggered this event (``null`` for spontaneous events)
    ``lamport``  per-node Lamport clock: local events tick ``+1``;
                 a ``deliver`` ticks to ``max(own, sender_at_send) + 1``,
                 so ``lamport`` orders causally-related events even when
                 simulation timestamps tie
    ``attrs``    free-form details, scrubbed JSON-safe via
                 :func:`repro.obs.trace.scrub`
    ===========  ====================================================

Causal context: :meth:`FlightRecorder.set_cause` marks the event currently
being handled (a delivery, a timer firing); subsequent emits default their
``cause`` to it.  :meth:`~repro.sim.engine.Simulator.step` clears the
context before each callback so causes never leak between events.

Determinism: records contain only simulation-derived data — no wall clock,
no entropy — so one ``(spec, seed, protocol)`` always produces the same
byte stream.  :mod:`repro.obs.replay` turns that into a checkable property.
"""

from __future__ import annotations

import json
import os
from types import TracebackType
from typing import Any, Iterable

from repro.errors import ObservabilityError
from repro.obs.trace import scrub

__all__ = ["FlightRecorder", "FREC", "RECORD_TYPES", "EVENT_KINDS"]

#: The record ``type`` values a stream may contain.
RECORD_TYPES = ("header", "begin", "end", "event")

#: Known event kinds (open set — analyzers tolerate others).
EVENT_KINDS = (
    "send",
    "deliver",
    "drop",
    "timer_set",
    "timer_fire",
    "start",
    "fail",
    "placement",
    "handoff",
    "elected",
    "suspect",
    "rescind",
    "crash",
    "restored",
)

#: Sentinel: "use the recorder's current causal context".
_CONTEXT = object()


class _NullRun:
    """Shared no-op context manager for ``FREC.run(...)`` while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullRun":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False

    def set(self, **attrs: object) -> "_NullRun":
        return self


_NULL_RUN = _NullRun()


class _Run:
    """An open run block; closes it (emitting ``end``) on exit."""

    __slots__ = ("_rec", "_owns", "_end_attrs")

    def __init__(self, rec: "FlightRecorder", owns: bool) -> None:
        self._rec = rec
        self._owns = owns
        self._end_attrs: dict[str, Any] = {}

    def set(self, **attrs: object) -> "_Run":
        """Attach attributes to the eventual ``end`` record."""
        self._end_attrs.update(attrs)
        return self

    def __enter__(self) -> "_Run":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        if self._owns:
            if exc_type is not None:
                self._end_attrs.setdefault("error", exc_type.__name__)
            self._rec.end_run(**self._end_attrs)
        return False


class FlightRecorder:
    """Switchable causal event recorder; see the module docstring.

    >>> rec = FlightRecorder()
    >>> rec.enable(fresh=True)
    >>> with rec.run("demo", k=1):
    ...     sid = rec.emit_send(0, t=0.0, msg="HELLO", mode="broadcast")
    ...     did = rec.emit_deliver(1, sid, t=0.1, msg="HELLO")
    ...     rec.set_cause(did)
    ...     _ = rec.emit("placement", 1, t=0.1, point=7)
    >>> [r["type"] for r in rec.records()]
    ['begin', 'event', 'event', 'event', 'end']
    >>> [r.get("kind") for r in rec.records() if r["type"] == "event"]
    ['send', 'deliver', 'placement']
    >>> rec.records()[3]["cause"], rec.records()[3]["lamport"]
    (1, 3)
    >>> rec.disable()
    """

    __slots__ = (
        "enabled",
        "_records",
        "_run_counter",
        "_run_open",
        "_seq",
        "_lamport",
        "_send_lamport",
        "_cause",
        "_has_header",
    )

    def __init__(self) -> None:
        self.enabled = False
        self._records: list[dict[str, Any]] = []
        self._run_counter = 0
        self._run_open = False
        self._seq = 0
        self._lamport: dict[int, int] = {}
        self._send_lamport: dict[int, int] = {}
        self._cause: int | None = None
        self._has_header = False

    # ------------------------------------------------------------------
    # switch
    # ------------------------------------------------------------------
    def enable(self, *, fresh: bool = False) -> None:
        """Turn recording on; ``fresh=True`` drops prior records first."""
        if fresh:
            self._reset_state()
        self.enabled = True

    def disable(self) -> None:
        """Turn recording off; recorded data stays exportable."""
        self.enabled = False

    def reset(self) -> None:
        """Disable and drop everything (test teardown)."""
        self.enabled = False
        self._reset_state()

    def _reset_state(self) -> None:
        self._records = []
        self._run_counter = 0
        self._run_open = False
        self._seq = 0
        self._lamport = {}
        self._send_lamport = {}
        self._cause = None
        self._has_header = False

    # ------------------------------------------------------------------
    # header and run blocks
    # ------------------------------------------------------------------
    def set_header(self, entry: str, params: dict[str, Any], **meta: object) -> None:
        """Record the stream header (once, before any run block).

        ``entry``/``params`` name a registered replay entry point (see
        :mod:`repro.obs.replay`); streams recorded from raw arrays use
        ``entry="opaque"`` and cannot be replayed, only validated.
        """
        if self._has_header or self._records:
            raise ObservabilityError("flight stream header must be the first record")
        self._records.append(
            {
                "type": "header",
                "version": 1,
                "entry": str(entry),
                "params": scrub(params),
                "attrs": {k: scrub(v) for k, v in meta.items()},
            }
        )
        self._has_header = True

    def run(self, protocol: str, **meta: object) -> _NullRun | _Run:
        """Open a run block as a context manager.

        Disabled: a shared no-op.  Re-entrant: opening a run while one is
        already open yields a pass-through manager (the events simply flow
        into the enclosing block), so a protocol built on another recorded
        routine does not fracture the stream.
        """
        if not self.enabled:
            return _NULL_RUN
        if self._run_open:
            return _Run(self, owns=False)
        self.begin_run(protocol, **meta)
        return _Run(self, owns=True)

    def begin_run(self, protocol: str, **meta: object) -> None:
        """Start a run block; resets run-local ids/seq/Lamport clocks."""
        if self._run_open:
            raise ObservabilityError("flight run blocks cannot nest")
        self._run_counter += 1
        self._run_open = True
        self._seq = 0
        self._lamport = {}
        self._send_lamport = {}
        self._cause = None
        self._records.append(
            {
                "type": "begin",
                "run": self._run_counter,
                "protocol": str(protocol),
                "attrs": {k: scrub(v) for k, v in meta.items()},
            }
        )

    def end_run(self, **meta: object) -> None:
        """Close the open run block."""
        if not self._run_open:
            raise ObservabilityError("no open flight run block to end")
        self._records.append(
            {
                "type": "end",
                "run": self._run_counter,
                "events": self._seq,
                "attrs": {k: scrub(v) for k, v in meta.items()},
            }
        )
        self._run_open = False
        self._cause = None

    # ------------------------------------------------------------------
    # causal context
    # ------------------------------------------------------------------
    def set_cause(self, event_id: int | None) -> None:
        """Mark the event currently being handled as the default cause."""
        self._cause = event_id

    def clear_cause(self) -> None:
        """Drop the causal context (the kernel does this before each event)."""
        self._cause = None

    @property
    def current_cause(self) -> int | None:
        return self._cause

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def emit(
        self,
        kind: str,
        node: int,
        *,
        t: float,
        cause: Any = _CONTEXT,
        **attrs: object,
    ) -> int:
        """Record one event by ``node`` at sim-time ``t``; returns its id.

        ``cause`` defaults to the current causal context; pass ``None``
        explicitly for a spontaneous event.  The node's Lamport clock ticks
        by one.
        """
        node = int(node)
        lam = self._lamport.get(node, 0) + 1
        self._lamport[node] = lam
        return self._append_event(kind, node, t, cause, lam, attrs)

    def emit_send(
        self,
        node: int,
        *,
        t: float,
        msg: str,
        mode: str = "broadcast",
        cause: Any = _CONTEXT,
        **attrs: object,
    ) -> int:
        """Record a transmission; remembers its Lamport stamp for delivery."""
        node = int(node)
        lam = self._lamport.get(node, 0) + 1
        self._lamport[node] = lam
        eid = self._append_event(
            "send", node, t, cause, lam, {"msg": msg, "mode": mode, **attrs}
        )
        self._send_lamport[eid] = lam
        return eid

    def emit_deliver(
        self,
        node: int,
        send_id: int | None,
        *,
        t: float,
        msg: str,
        **attrs: object,
    ) -> int:
        """Record a delivery caused by ``send_id``; merges Lamport clocks."""
        node = int(node)
        sender_lam = self._send_lamport.get(send_id, 0) if send_id is not None else 0
        lam = max(self._lamport.get(node, 0), sender_lam) + 1
        self._lamport[node] = lam
        return self._append_event(
            "deliver", node, t, send_id, lam, {"msg": msg, **attrs}
        )

    def _append_event(
        self,
        kind: str,
        node: int,
        t: float,
        cause: Any,
        lamport: int,
        attrs: dict[str, Any],
    ) -> int:
        eid = self._seq
        self._records.append(
            {
                "type": "event",
                "seq": self._seq,
                "id": eid,
                "t": float(t),
                "node": node,
                "kind": str(kind),
                "cause": self._cause if cause is _CONTEXT else cause,
                "lamport": int(lamport),
                "attrs": {k: scrub(v) for k, v in attrs.items()},
            }
        )
        self._seq += 1
        return eid

    # ------------------------------------------------------------------
    # access, merge, export
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    @property
    def n_runs(self) -> int:
        return self._run_counter

    def records(self) -> list[dict[str, Any]]:
        """The recorded stream, oldest first (a copy; safe to mutate)."""
        return [dict(r) for r in self._records]

    def absorb(self, records: Iterable[dict[str, Any]]) -> int:
        """Append another recorder's run blocks, renumbering their runs.

        The seam :func:`repro.obs.bridge.merge_worker_obs` uses: a worker
        ships run-local blocks, the parent renumbers ``begin``/``end``
        records into its own run sequence.  Headers are dropped (the parent
        owns the stream header); absorbing mid-block raises.

        Returns the number of records appended.
        """
        if self._run_open:
            raise ObservabilityError(
                "cannot absorb worker flight records into an open run block"
            )
        n = 0
        current: int | None = None
        for rec in records:
            rtype = rec.get("type")
            if rtype == "header":
                continue
            rec = dict(rec)
            if rtype == "begin":
                self._run_counter += 1
                current = self._run_counter
                rec["run"] = current
            elif rtype == "end":
                rec["run"] = current if current is not None else self._run_counter
                current = None
            self._records.append(rec)
            n += 1
        return n

    def to_jsonl(self) -> str:
        """The stream as JSON lines (one record per line, sorted keys)."""
        return "\n".join(
            json.dumps(rec, sort_keys=True, allow_nan=False)
            for rec in self._records
        )

    def write_jsonl(self, path: str | os.PathLike) -> int:
        """Write the stream to ``path``; returns the record count."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as fh:
            if text:
                fh.write(text + "\n")
        return len(self._records)

    # ------------------------------------------------------------------
    def session(
        self,
        path: str | os.PathLike | None = None,
        *,
        header: tuple[str, dict[str, Any]] | None = None,
    ) -> "_Session":
        """Record exactly one stretch of work, then restore prior state.

        Used by the protocol runners' ``flight_record=`` kwarg and by the
        replay harness: on entry the recorder is switched on fresh (saving
        whatever state it held), on exit the captured records are written
        to ``path`` (when given), exposed via ``.records``, and the saved
        state is put back — a runner-local recording never disturbs an
        enclosing CLI-level one.
        """
        return _Session(self, path, header)


class _Session:
    """Context manager behind :meth:`FlightRecorder.session`."""

    __slots__ = ("_rec", "_path", "_header", "_saved", "records")

    def __init__(
        self,
        rec: FlightRecorder,
        path: str | os.PathLike | None,
        header: tuple[str, dict[str, Any]] | None,
    ) -> None:
        self._rec = rec
        self._path = path
        self._header = header
        self._saved: dict[str, Any] | None = None
        self.records: list[dict[str, Any]] = []

    def __enter__(self) -> "_Session":
        rec = self._rec
        self._saved = {slot: getattr(rec, slot) for slot in FlightRecorder.__slots__}
        rec._reset_state()
        rec.enabled = True
        if self._header is not None:
            rec.set_header(self._header[0], self._header[1])
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        rec = self._rec
        self.records = rec.records()
        if self._path is not None and exc_type is None:
            rec.write_jsonl(self._path)
        assert self._saved is not None
        for slot, value in self._saved.items():
            setattr(rec, slot, value)
        return False


#: The process-wide flight recorder all instrumented code emits into.
FREC = FlightRecorder()

if os.environ.get("REPRO_FLIGHTREC", "") not in ("", "0"):  # pragma: no cover
    FREC.enable()
