"""Process-local metrics: labelled counters, gauges and histograms.

A :class:`MetricsRegistry` holds named instruments, each optionally split by
a label set (``registry.counter("decor_messages_total", kind="spillover")``).
The naming follows the Prometheus conventions the repo's related work uses
for message/energy accounting — monotonic totals end in ``_total``, and a
label combination identifies one time series — but everything stays
in-process and exports to a single JSON document.

Three instrument types:

* :class:`MCounter` — monotonically increasing (message counts, placements);
* :class:`Gauge` — a settable value (current deficiency, open spans);
* :class:`Histogram` — count/sum/min/max plus power-of-two buckets, enough
  to see the shape of e.g. per-round greedy benefit without storing samples.

Registering the same name with two different instrument types raises
:class:`~repro.errors.ObservabilityError` — a silent counter/gauge mixup
would corrupt every downstream report.

Label cardinality is bounded: each metric name may hold at most
``max_label_sets`` distinct label combinations (default
:data:`DEFAULT_MAX_LABEL_SETS`).  Once a name is full, lookups with *new*
label sets return a shared no-op instrument and increment the
``obs_labels_dropped_total{metric=...}`` overflow counter instead of
growing the registry — a long-lived process (the planned restoration
daemon) cannot be grown without bound by unbounded label values.
Existing series keep working at the cap.
"""

from __future__ import annotations

import json
import math
import os
from typing import TypeVar, Union, cast

from repro.errors import ObservabilityError

__all__ = [
    "DEFAULT_MAX_LABEL_SETS",
    "LABELS_DROPPED_METRIC",
    "MCounter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Upper edges of the histogram's power-of-two buckets; the last bucket is
#: open-ended.  2**-4 .. 2**20 covers microsecond timings through node counts.
_BUCKET_EDGES = tuple(2.0 ** e for e in range(-4, 21))

#: Per-metric cap on distinct label combinations (see module docstring).
DEFAULT_MAX_LABEL_SETS = 512

#: Overflow counter incremented when a new label set is dropped at the cap.
LABELS_DROPPED_METRIC = "obs_labels_dropped_total"


class MCounter:
    """A monotonically increasing counter.

    >>> c = MCounter()
    >>> c.inc(); c.inc(4)
    >>> c.value
    5
    """

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ObservabilityError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def as_dict(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A value that can go up and down.

    >>> g = Gauge()
    >>> g.set(7.5); g.add(-2.5)
    >>> g.value
    5.0
    """

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def as_dict(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Count/sum/min/max plus power-of-two buckets.

    >>> h = Histogram()
    >>> for v in (0.5, 1.0, 3.0):
    ...     h.observe(v)
    >>> (h.count, h.sum, h.min, h.max)
    (3, 4.5, 0.5, 3.0)
    >>> h.mean
    1.5
    """

    __slots__ = ("count", "sum", "min", "max", "buckets")
    kind = "histogram"

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets = [0] * (len(_BUCKET_EDGES) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, edge in enumerate(_BUCKET_EDGES):
            if value <= edge:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-edge estimate of the ``q`` quantile from the buckets.

        Returns the upper edge of the bucket containing the ``q``-th
        observation (the usual bucketed-histogram estimate, biased high by
        at most one power of two).  ``0.0`` when empty; ``q == 0`` reports
        the observed ``min`` (the 0th observation *is* the minimum — the
        bucket edge would overshoot, and on a single-bucket histogram it
        would collapse every quantile onto the max); the top bucket is
        open-ended and reports the observed ``max``.

        >>> h = Histogram()
        >>> for v in (0.5, 1.0, 3.0, 100.0):
        ...     h.observe(v)
        >>> h.quantile(0.5)
        1.0
        >>> h.quantile(1.0)
        100.0
        >>> h.quantile(0.0)
        0.5
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        if q == 0.0:
            return self.min
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= rank and n:
                if i == len(_BUCKET_EDGES):
                    return self.max
                return min(_BUCKET_EDGES[i], self.max)
        return self.max

    def state(self) -> dict:
        """Raw mergeable state (for cross-process aggregation)."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": list(self.buckets),
        }

    def combine(self, state: dict) -> None:
        """Fold another histogram's :meth:`state` into this one."""
        self.count += int(state["count"])
        self.sum += float(state["sum"])
        self.min = min(self.min, float(state["min"]))
        self.max = max(self.max, float(state["max"]))
        buckets = state["buckets"]
        if len(buckets) != len(self.buckets):
            raise ObservabilityError(
                "histogram bucket layouts differ; cannot combine"
            )
        for i, n in enumerate(buckets):
            self.buckets[i] += int(n)

    def as_dict(self) -> dict:
        out = {"count": self.count, "sum": self.sum, "mean": self.mean}
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
        # only non-empty buckets, keyed by upper edge, to keep exports small
        out["buckets"] = {
            ("+inf" if i == len(_BUCKET_EDGES) else f"{_BUCKET_EDGES[i]:g}"): n
            for i, n in enumerate(self.buckets)
            if n
        }
        return out


class _DroppedCounter(MCounter):
    """Shared no-op counter handed out past the label-cardinality cap."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass


class _DroppedGauge(Gauge):
    """Shared no-op gauge handed out past the label-cardinality cap."""

    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _DroppedHistogram(Histogram):
    """Shared no-op histogram handed out past the label-cardinality cap."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_DROPPED: dict[str, Union[MCounter, Gauge, Histogram]] = {
    "counter": _DroppedCounter(),
    "gauge": _DroppedGauge(),
    "histogram": _DroppedHistogram(),
}

#: Any concrete instrument; :meth:`MetricsRegistry._get` is generic over it.
_Instrument = Union[MCounter, Gauge, Histogram]
_I = TypeVar("_I", MCounter, Gauge, Histogram)


class MetricsRegistry:
    """Named, labelled instruments with JSON export.

    Instruments are created on first use and keyed by ``(name, labels)``, so
    ``counter("x", kind="a")`` and ``counter("x", kind="b")`` are two series
    of the same metric.

    >>> reg = MetricsRegistry()
    >>> reg.counter("decor_messages_total", kind="spillover").inc(3)
    >>> reg.counter("decor_messages_total", kind="border").inc()
    >>> reg.value("decor_messages_total", kind="spillover")
    3
    >>> sorted(reg.as_dict()["decor_messages_total"])
    ['kind=border', 'kind=spillover']
    >>> reg.gauge("decor_messages_total")   # doctest: +IGNORE_EXCEPTION_DETAIL
    Traceback (most recent call last):
    repro.errors.ObservabilityError: metric 'decor_messages_total' ...

    Past the per-metric cap, new label sets are dropped, not stored:

    >>> reg = MetricsRegistry(max_label_sets=2)
    >>> for node in range(4):
    ...     reg.counter("beacons_total", node=node).inc()
    >>> len(reg)            # 2 kept series + the overflow counter
    3
    >>> reg.value("obs_labels_dropped_total", metric="beacons_total")
    2
    """

    def __init__(self, *, max_label_sets: int = DEFAULT_MAX_LABEL_SETS) -> None:
        if max_label_sets < 1:
            raise ObservabilityError(
                f"max_label_sets must be >= 1, got {max_label_sets}"
            )
        self.max_label_sets = max_label_sets
        self._instruments: dict[tuple, _Instrument] = {}
        self._types: dict[str, str] = {}
        self._series_count: dict[str, int] = {}
        #: Keys touched (created or looked up) since the last
        #: :meth:`clear_touched`; the sampler's delta source.
        self._touched: set[tuple] = set()
        #: Total instrument operations (lookups); the overhead benchmark uses
        #: this to bound enabled-mode cost per touchpoint.
        self.ops = 0

    # ------------------------------------------------------------------
    def _get(self, factory: type[_I], name: str, labels: dict) -> _I:
        self.ops += 1
        want = factory.kind
        have = self._types.get(name)
        if have is not None and have != want:
            raise ObservabilityError(
                f"metric {name!r} already registered as a {have}, not a {want}"
            )
        key = (name, tuple(sorted(labels.items())))
        inst = self._instruments.get(key)
        if inst is None:
            if self._series_count.get(name, 0) >= self.max_label_sets:
                self._note_dropped(name)
                return cast("_I", _DROPPED[want])
            inst = factory()
            self._instruments[key] = inst
            self._types[name] = want
            self._series_count[name] = self._series_count.get(name, 0) + 1
        self._touched.add(key)
        return cast("_I", inst)

    def _note_dropped(self, name: str) -> None:
        """Count one dropped label set without re-entering :meth:`_get`."""
        key = (LABELS_DROPPED_METRIC, (("metric", name),))
        inst = self._instruments.get(key)
        if inst is None:
            inst = MCounter()
            self._instruments[key] = inst
            self._types[LABELS_DROPPED_METRIC] = "counter"
            self._series_count[LABELS_DROPPED_METRIC] = (
                self._series_count.get(LABELS_DROPPED_METRIC, 0) + 1
            )
        cast(MCounter, inst).inc()
        self._touched.add(key)

    def counter(self, name: str, **labels: object) -> MCounter:
        return self._get(MCounter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._get(Histogram, name, labels)

    # ------------------------------------------------------------------
    def value(self, name: str, **labels: object) -> int | float:
        """The current value of a counter/gauge series (0 if never touched)."""
        key = (name, tuple(sorted(labels.items())))
        inst = self._instruments.get(key)
        if isinstance(inst, (MCounter, Gauge)):
            return inst.value
        return 0

    def __len__(self) -> int:
        return len(self._instruments)

    def reset(self) -> None:
        self._instruments.clear()
        self._types.clear()
        self._series_count.clear()
        self._touched.clear()
        self.ops = 0

    # ------------------------------------------------------------------
    # touched-key tracking (the sampler's delta source)
    # ------------------------------------------------------------------
    def touched(self) -> list[tuple[str, tuple, _Instrument]]:
        """Series touched since the last :meth:`clear_touched`, key-sorted.

        Every :meth:`counter`/:meth:`gauge`/:meth:`histogram` lookup marks
        its series touched; the sampler reads this to emit only the series
        that moved since the previous sample and then clears the set.
        """
        out: list[tuple[str, tuple, _Instrument]] = []
        for key in sorted(self._touched):
            inst = self._instruments.get(key)
            if inst is not None:
                out.append((key[0], key[1], inst))
        return out

    def clear_touched(self) -> None:
        self._touched.clear()

    # ------------------------------------------------------------------
    # cross-process aggregation
    # ------------------------------------------------------------------
    def dump_state(self) -> list[tuple[str, tuple, str, dict]]:
        """Picklable snapshot of every series, in stable key order.

        The inverse of :meth:`absorb`: a worker process dumps its registry,
        ships the payload back, and the parent folds it in.  Counters carry
        their totals, gauges their current value, histograms their raw
        bucket state.

        >>> reg = MetricsRegistry()
        >>> reg.counter("x_total", kind="a").inc(3)
        >>> reg.dump_state()
        [('x_total', (('kind', 'a'),), 'counter', {'value': 3})]
        """
        out: list[tuple[str, tuple, str, dict]] = []
        for (name, labels), inst in sorted(
            self._instruments.items(), key=lambda kv: kv[0]
        ):
            payload = inst.state() if isinstance(inst, Histogram) else inst.as_dict()
            out.append((name, labels, inst.kind, payload))
        return out

    def absorb(self, state: list[tuple[str, tuple, str, dict]]) -> None:
        """Fold a :meth:`dump_state` payload into this registry.

        Counter values add, gauge values add (a worker's gauge reading is
        treated as its contribution), histogram states merge bucketwise.
        Absorbing the same payload twice double-counts — callers own the
        once-per-worker discipline.

        >>> a, b = MetricsRegistry(), MetricsRegistry()
        >>> a.counter("x_total").inc(2); b.counter("x_total").inc(5)
        >>> a.absorb(b.dump_state())
        >>> a.value("x_total")
        7
        """
        for name, labels, kind, payload in state:
            labels_dict = dict(labels)
            if kind == "counter":
                self.counter(name, **labels_dict).inc(payload["value"])
            elif kind == "gauge":
                self.gauge(name, **labels_dict).add(payload["value"])
            elif kind == "histogram":
                self.histogram(name, **labels_dict).combine(payload)
            else:  # pragma: no cover - payload corruption
                raise ObservabilityError(f"unknown instrument kind {kind!r}")

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """``{name: {"label=v,...": payload}}`` with stable ordering."""
        out: dict[str, dict] = {}
        for (name, labels), inst in sorted(
            self._instruments.items(), key=lambda kv: kv[0]
        ):
            series = ",".join(f"{k}={v}" for k, v in labels)
            out.setdefault(name, {})[series] = {
                "type": inst.kind,
                **inst.as_dict(),
            }
        return out

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def write_json(self, path: str | os.PathLike) -> int:
        """Write the metrics dump to ``path``; returns the series count."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")
        return len(self._instruments)
