"""The process-wide observability runtime and its off switch.

Instrumented code talks to one module-level :data:`OBS` singleton instead of
threading tracer/registry handles through every signature.  The contract:

* **disabled (the default)** — every call site pays a single attribute
  check.  ``OBS.span(...)`` hands back a shared no-op context manager,
  ``OBS.counter(...)`` a shared no-op instrument; hot loops guard their
  per-item work with ``if OBS.enabled:`` so nothing is even formatted.
  Instrumentation must never change results — it only observes.
* **enabled** — via ``OBS.enable()`` (the CLI's ``--trace``/``--metrics``
  flags do this) or by setting ``REPRO_OBS=1`` in the environment before
  import — spans, events and metrics record into the runtime's
  :class:`~repro.obs.trace.Tracer` and
  :class:`~repro.obs.metrics.MetricsRegistry`.

The singleton is process-local state in the same sense as NumPy's global
RNG: fine for a CLI run or a script, and tests that enable it must disable
it again (see ``tests/test_obs.py`` for the fixture pattern).
"""

from __future__ import annotations

import os
from types import TracebackType

from typing import IO, Any

from repro.obs.metrics import Gauge, Histogram, MCounter, MetricsRegistry
from repro.obs.sampler import MetricsSampler
from repro.obs.trace import DEFAULT_CAPACITY, Span, Tracer

__all__ = ["ObsRuntime", "OBS", "NULL_SPAN"]


class _NullSpan:
    """Shared no-op stand-in for :class:`~repro.obs.trace.Span` when disabled."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False

    def set(self, **attrs: object) -> _NullSpan:
        return self


class _NullInstrument:
    """Shared no-op counter/gauge/histogram when disabled."""

    __slots__ = ()
    value = 0

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


#: The no-op span every ``OBS.span`` call returns while disabled.
NULL_SPAN = _NullSpan()
_NULL_INSTRUMENT = _NullInstrument()


class ObsRuntime:
    """Switchable facade over a tracer and a metrics registry.

    >>> obs = ObsRuntime()
    >>> obs.enabled
    False
    >>> obs.span("x") is NULL_SPAN          # disabled: shared no-ops
    True
    >>> obs.enable()
    >>> with obs.span("figure", figure="fig08"):
    ...     obs.event("placement", point=3)
    ...     obs.counter("decor_placements_total", method="centralized").inc()
    >>> (obs.tracer.n_spans, obs.tracer.n_events)
    (1, 1)
    >>> obs.metrics.value("decor_placements_total", method="centralized")
    1
    >>> obs.disable()                       # records survive for export
    >>> (obs.enabled, obs.tracer.n_spans)
    (False, 1)
    """

    def __init__(self) -> None:
        self.enabled = False
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        #: Attached time-series sampler, or ``None`` (sampling off).
        self.sampler: MetricsSampler | None = None

    # ------------------------------------------------------------------
    def enable(self, *, trace_capacity: int = DEFAULT_CAPACITY,
               fresh: bool = False, sample: float | None = None,
               sample_stream: IO[str] | None = None) -> None:
        """Turn recording on.

        ``fresh=True`` (what the CLI uses per invocation) replaces the tracer
        and registry so the export covers exactly this run; the default keeps
        whatever has accumulated.

        ``sample`` attaches a :class:`~repro.obs.sampler.MetricsSampler`
        with that period (``0`` = logical time, one row per hook).  ``None``
        defers to the ``REPRO_OBS_SAMPLE`` environment variable; when that
        is unset too, no sampler is attached and :meth:`sample` is a no-op.
        ``sample_stream`` additionally mirrors every row to an open text
        stream (the JSONL sink) as it is recorded.
        """
        if fresh or self.tracer.capacity != trace_capacity:
            self.tracer = Tracer(trace_capacity)
        if fresh:
            self.metrics = MetricsRegistry()
            self.sampler = None
        env = os.environ.get("REPRO_OBS_SAMPLE", "")
        env_period = float(env) if env != "" else None
        if sample is not None or sample_stream is not None:
            period = sample if sample is not None else (env_period or 0.0)
            self.sampler = MetricsSampler(
                self.metrics, period=period, stream=sample_stream
            )
        elif env_period is not None and self.sampler is None:
            self.sampler = MetricsSampler(self.metrics, period=env_period)
        self.enabled = True

    def disable(self) -> None:
        """Turn recording off; already-recorded data stays exportable."""
        self.enabled = False

    def reset(self) -> None:
        """Disable and drop all recorded data (test teardown)."""
        self.enabled = False
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.sampler = None

    # ------------------------------------------------------------------
    # delegating facade — each call is one attribute check when disabled
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object) -> Span | _NullSpan:
        if not self.enabled:
            return NULL_SPAN
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs: object) -> None:
        if not self.enabled:
            return
        self.tracer.event(name, **attrs)

    def counter(self, name: str, **labels: object) -> MCounter | _NullInstrument:
        if not self.enabled:
            return _NULL_INSTRUMENT
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: object) -> Gauge | _NullInstrument:
        if not self.enabled:
            return _NULL_INSTRUMENT
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels: object) -> Histogram | _NullInstrument:
        if not self.enabled:
            return _NULL_INSTRUMENT
        return self.metrics.histogram(name, **labels)

    def sample(self, tag: str, **ctx: object) -> dict[str, Any] | None:
        """Record one time-series row if a sampler is attached (else no-op)."""
        if not self.enabled:
            return None
        if self.sampler is None:
            return None
        return self.sampler.sample(tag, **ctx)


#: The process-wide runtime all instrumented repro code records into.
OBS = ObsRuntime()

if os.environ.get("REPRO_OBS", "") not in ("", "0"):  # pragma: no cover
    OBS.enable()
