"""Domain health gauges: live network state distilled into a few numbers.

The paper's premise is *continuous monitoring of network health to trigger
restoration*; this module is the monitoring half.  Each ``record_*`` helper
reads live domain state (a :class:`~repro.network.coverage.CoverageState`,
the sim's energy/radio accounting, a cell of protocol nodes) and sets the
corresponding ``health_*`` gauges in the global metrics registry — which the
time-series sampler (:mod:`repro.obs.sampler`) then turns into trajectories
and the exporters (:mod:`repro.obs.export`) serve.

Gauge catalogue (all unlabelled; one series each):

====================================  =========================================
``health_coverage_fraction``          fraction of field points with >= k sensors
``health_k_deficient_points``         points below the k target
``health_open_holes``                 connected deficient components
                                      (:func:`repro.analysis.holes.find_holes`)
``health_min_coverage``               the weakest point's sensor count
``health_node_energy_min``            lowest per-node energy spend so far
``health_node_energy_mean``           mean per-node energy spend
``health_suspected_nodes``            neighbours currently suspected failed
``health_election_churn``             leadership changes beyond the first
                                      election, summed over cells
====================================  =========================================

Every helper is a *touchpoint* in the OBS001/OBS004 sense: callers outside
``repro.obs`` must guard with ``if OBS.enabled:`` so the disabled path never
pays for hole detection or energy profiling.  The helpers only observe —
they never mutate domain state — so enabling them cannot change results.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.obs.runtime import OBS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs <- analysis)
    from repro.network.coverage import CoverageState
    from repro.sim.heartbeat import HeartbeatNode
    from repro.sim.radio import RadioStats
    from repro.sim.stats import EnergyModel

__all__ = [
    "coverage_health",
    "record_coverage_health",
    "record_energy_health",
    "record_protocol_health",
]


def coverage_health(coverage: "CoverageState", k: int) -> dict[str, float]:
    """Pure computation of the coverage gauges (no registry writes).

    Hole detection short-circuits: a fully covered field has no deficient
    points, so :func:`~repro.analysis.holes.find_holes` returns immediately
    and the steady-state cost is two vectorised passes over the counts.
    """
    from repro.analysis.holes import find_holes

    deficient = int(coverage.deficient_indices(k).size)
    holes = len(find_holes(coverage, k)) if deficient else 0
    return {
        "health_coverage_fraction": coverage.covered_fraction(k),
        "health_k_deficient_points": float(deficient),
        "health_open_holes": float(holes),
        "health_min_coverage": float(coverage.min_coverage()),
    }


def record_coverage_health(coverage: "CoverageState", k: int) -> None:
    """Set the coverage gauges from a live coverage state."""
    for name, value in coverage_health(coverage, k).items():
        OBS.metrics.gauge(name).set(value)


def record_energy_health(
    energy: "EnergyModel", stats: "RadioStats"
) -> None:
    """Set the energy gauges from one radio run's per-node accounting."""
    profile = energy.energy_profile(stats)
    if not profile:
        return
    values = list(profile.values())
    OBS.metrics.gauge("health_node_energy_min").set(min(values))
    OBS.metrics.gauge("health_node_energy_mean").set(
        sum(values) / len(values)
    )


def record_protocol_health(
    heartbeats: Iterable["HeartbeatNode"] = (),
    elections: Iterable[object] = (),
) -> None:
    """Set the liveness gauges from a run's protocol nodes.

    ``heartbeats`` contribute the union of currently suspected neighbours;
    ``elections`` (anything with a ``leadership_history`` list, e.g.
    :class:`~repro.sim.election.CellElectionNode`) contribute churn — the
    number of leadership changes beyond each cell's first election.
    """
    suspected: set[int] = set()
    for node in heartbeats:
        suspected |= node.suspected()
    OBS.metrics.gauge("health_suspected_nodes").set(float(len(suspected)))
    churn = 0
    seen = False
    for cell in elections:
        history: list[int] = getattr(cell, "leadership_history", [])
        seen = True
        last: int | None = None
        for leader in history:
            if last is not None and leader != last:
                churn += 1
            last = leader
    if seen:
        OBS.metrics.gauge("health_election_churn").set(float(churn))
