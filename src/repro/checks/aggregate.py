"""``decor check``: one command over every static gate.

Aggregates the project's correctness gates —

* **flow** — the interprocedural effect analyzer
  (:mod:`repro.checks.flow`) against the grow-only baseline;
* **lint** — the per-file AST linter (full rules on ``src``/``tests``,
  relaxed subset on ``benchmarks``/``tools``);
* **typing** — ``tools/typing_ratchet.py`` (the strict-mypy set only
  grows);
* **mypy** — the configured mypy run, when mypy is importable;
* **bench** — ``tools/bench_ratchet.py`` (scanned-entry counters only
  shrink; slow, skip with ``--skip bench`` for pre-commit use)

— and renders one report as ``text``, ``json`` or ``sarif`` (SARIF
2.1.0, consumable by GitHub code scanning).  Gates whose tooling is
unavailable (no mypy in the environment, no ``tools/`` scripts outside
a repo checkout) are reported as skipped, not failed.  Exit status is
non-zero iff any non-skipped gate fails.
"""

from __future__ import annotations

import importlib.util
import json
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.checks.lint import ALL_RULES, RELAXED_RULES, lint_paths
from repro.checks.lint.framework import SUPPRESSION_RULE, Finding

__all__ = [
    "GATE_NAMES",
    "GateResult",
    "run_gates",
    "render_text",
    "render_json",
    "render_sarif",
]


@dataclass
class GateResult:
    """Outcome of one gate: pass/fail/skip plus location-bearing findings."""

    name: str
    ok: bool
    skipped: bool
    detail: str
    findings: list[Finding] = field(default_factory=list)

    @property
    def status(self) -> str:
        if self.skipped:
            return "skip"
        return "ok" if self.ok else "FAIL"


def _flow_gate() -> GateResult:
    from repro.checks.flow.baseline import (
        DEFAULT_BASELINE,
        check_baseline,
        load_baseline,
    )
    from repro.checks.flow.effects import analyze_paths
    from repro.checks.flow.rules import apply_suppressions, flow_findings

    analysis = analyze_paths(["src"])
    findings = apply_suppressions(flow_findings(analysis))
    report = check_baseline(findings, load_baseline(DEFAULT_BASELINE))
    located = [ff.finding for ff in report.new]
    for key in report.stale:
        located.append(
            Finding(
                path=str(DEFAULT_BASELINE),
                line=1,
                col=1,
                rule="FLOW-BASELINE",
                message=(
                    f"stale baseline entry `{key}` — the finding is gone; "
                    "remove the entry (the baseline may only shrink)"
                ),
            )
        )
    detail = (
        f"{analysis.n_functions} functions, {analysis.n_edges} edges, "
        f"{analysis.n_sccs} SCCs; {len(report.new)} new, "
        f"{len(report.matched)} baselined, {len(report.stale)} stale"
    )
    return GateResult(
        name="flow",
        ok=report.ok,
        skipped=False,
        detail=detail,
        findings=located,
    )


def _lint_gate() -> GateResult:
    findings = list(lint_paths(["src", "tests"]))
    findings.extend(lint_paths(["benchmarks", "tools"], RELAXED_RULES))
    findings.sort()
    return GateResult(
        name="lint",
        ok=not findings,
        skipped=False,
        detail=f"{len(findings)} finding(s)",
        findings=findings,
    )


def _script_gate(name: str, script: Path, args: Sequence[str]) -> GateResult:
    if not script.is_file():
        return GateResult(
            name=name,
            ok=True,
            skipped=True,
            detail=f"{script} not present (not a repo checkout?)",
        )
    proc = subprocess.run(
        [sys.executable, str(script), *args],
        capture_output=True,
        text=True,
        check=False,
    )
    tail = (proc.stdout + proc.stderr).strip().splitlines()
    return GateResult(
        name=name,
        ok=proc.returncode == 0,
        skipped=False,
        detail=tail[-1] if tail else f"exit {proc.returncode}",
    )


def _typing_gate() -> GateResult:
    return _script_gate("typing", Path("tools") / "typing_ratchet.py", [])


def _bench_gate() -> GateResult:
    return _script_gate("bench", Path("tools") / "bench_ratchet.py", [])


def _mypy_gate() -> GateResult:
    if importlib.util.find_spec("mypy") is None:
        return GateResult(
            name="mypy",
            ok=True,
            skipped=True,
            detail="mypy not installed in this environment",
        )
    proc = subprocess.run(
        [sys.executable, "-m", "mypy"],
        capture_output=True,
        text=True,
        check=False,
    )
    tail = (proc.stdout + proc.stderr).strip().splitlines()
    return GateResult(
        name="mypy",
        ok=proc.returncode == 0,
        skipped=False,
        detail=tail[-1] if tail else f"exit {proc.returncode}",
    )


_GATES: dict[str, Callable[[], GateResult]] = {
    "flow": _flow_gate,
    "lint": _lint_gate,
    "typing": _typing_gate,
    "mypy": _mypy_gate,
    "bench": _bench_gate,
}

#: Gate names in execution/reporting order.
GATE_NAMES: tuple[str, ...] = tuple(_GATES)


def run_gates(skip: Sequence[str] = ()) -> list[GateResult]:
    """Run every gate not named in ``skip``; skipped gates still report."""
    results: list[GateResult] = []
    skipset = set(skip)
    for name in GATE_NAMES:
        if name in skipset:
            results.append(
                GateResult(
                    name=name, ok=True, skipped=True, detail="skipped (--skip)"
                )
            )
        else:
            results.append(_GATES[name]())
    return results


def overall_ok(results: Sequence[GateResult]) -> bool:
    return all(r.ok or r.skipped for r in results)


# ---------------------------------------------------------------------------
# renderers
# ---------------------------------------------------------------------------


def render_text(results: Sequence[GateResult]) -> str:
    lines: list[str] = []
    for result in results:
        lines.append(f"{result.name:<7} {result.status:<5} {result.detail}")
        for finding in result.findings:
            lines.append(f"  {finding.render()}")
    verdict = "ok" if overall_ok(results) else "FAIL"
    lines.append(f"decor check: {verdict}")
    return "\n".join(lines)


def render_json(results: Sequence[GateResult]) -> str:
    payload = {
        "ok": overall_ok(results),
        "gates": [
            {
                "name": r.name,
                "ok": r.ok,
                "skipped": r.skipped,
                "detail": r.detail,
                "findings": [
                    {
                        "path": f.path,
                        "line": f.line,
                        "col": f.col,
                        "rule": f.rule,
                        "message": f.message,
                    }
                    for f in r.findings
                ],
            }
            for r in results
        ],
    }
    return json.dumps(payload, indent=2)


def _rule_catalogue() -> list[dict[str, object]]:
    from repro.checks.flow.rules import FLOW_RULE_SUMMARIES

    rules: dict[str, str] = {}
    for rule_cls in ALL_RULES:
        rules[rule_cls.code] = rule_cls.summary
    rules[SUPPRESSION_RULE] = (
        "unused `# checks: ignore[...]` suppressions are errors"
    )
    rules.update(FLOW_RULE_SUMMARIES)
    rules["FLOW-BASELINE"] = (
        "the flow baseline may only shrink; stale entries must be removed"
    )
    return [
        {"id": code, "shortDescription": {"text": rules[code]}}
        for code in sorted(rules)
    ]


def render_sarif(results: Sequence[GateResult]) -> str:
    """SARIF 2.1.0: every location-bearing finding plus failed gates."""
    sarif_results: list[dict[str, object]] = []
    for result in results:
        for finding in result.findings:
            sarif_results.append(
                {
                    "ruleId": finding.rule,
                    "level": "error",
                    "message": {
                        "text": f"{finding.rule}: {finding.message}"
                    },
                    "locations": [
                        {
                            "physicalLocation": {
                                "artifactLocation": {
                                    "uri": finding.path.replace("\\", "/")
                                },
                                "region": {
                                    "startLine": finding.line,
                                    "startColumn": finding.col,
                                },
                            }
                        }
                    ],
                }
            )
        if not result.ok and not result.skipped and not result.findings:
            sarif_results.append(
                {
                    "ruleId": f"GATE-{result.name}",
                    "level": "error",
                    "message": {
                        "text": f"gate `{result.name}` failed: {result.detail}"
                    },
                }
            )
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "decor-check",
                        "rules": _rule_catalogue(),
                    }
                },
                "results": sarif_results,
            }
        ],
    }
    return json.dumps(payload, indent=2)
