"""Effect lattice, base-effect extraction, and fixpoint propagation.

Every function gets a *base* effect set — what its own body observably
does — classified straight off the call/mutation sites the
:mod:`~repro.checks.flow.callgraph` walker collected:

* ``WALL_CLOCK`` — calls into :data:`~repro.checks.lint.rules_det.
  _WALL_CLOCK_OR_ENTROPY` (``time.time``, ``uuid.uuid4``, ``os.urandom``
  ...) or anything in ``secrets``;
* ``UNSEEDED_RNG`` / ``SEEDED_RNG`` — RNG construction, split on whether
  the constructor received arguments (``default_rng()`` draws OS entropy,
  ``default_rng(seed)`` does not); legacy global-RNG calls are always
  ``UNSEEDED_RNG``;
* ``ENV_READ`` — ``os.environ`` / ``os.getenv`` reads;
* ``IO`` — bare ``open``/``print``/``input``, ``sys.std*`` writes,
  ``subprocess``/``shutil``/``tempfile`` calls, and unresolved
  ``Path``-style read/write method calls.  Receiver-typed file handles
  (``f.write``) are invisible to the walker and land on the ``open``
  that produced them instead;
* ``GLOBAL_MUTATION`` — stores to module globals or imported-singleton
  attributes, plus ``enable``/``disable``/``reset`` calls on the OBS,
  FREC and CHECKS runtime singletons;
* ``OBS_WRITE`` — *unguarded* OBS/FREC telemetry touchpoints
  (``OBS.event`` ... ``FREC.emit`` ..., ``record_*_health``) outside
  ``repro.obs`` itself.

Summaries are then propagated bottom-up over the SCC condensation of the
call graph.  Tarjan emits components in reverse topological order, so a
single pass is an exact fixpoint; members of one SCC (a recursion cycle)
share one summary.  Two seams mask propagation:

* call edges into ``repro.obs``-defined functions contribute **nothing**
  — instrumentation is results-invariant by contract, and the obs
  package owns its own clock reads and singleton state;
* edges sitting under an ``if OBS.enabled:`` / ``if FREC.enabled:``
  guard contribute the callee's summary *minus* ``OBS_WRITE`` — a
  guarded telemetry write is exactly the sanctioned shape.

>>> render_effects(frozenset())
'PURE'
>>> render_effects(frozenset({"IO", "WALL_CLOCK"}))
'WALL_CLOCK+IO'
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.checks.flow.callgraph import (
    CallGraph,
    CallSite,
    FunctionNode,
    build_call_graph,
    strongly_connected_components,
)
from repro.checks.lint.rules_det import (
    _NUMPY_RANDOM_ALLOWED,
    _WALL_CLOCK_OR_ENTROPY,
)

__all__ = [
    "PURE",
    "SEEDED_RNG",
    "UNSEEDED_RNG",
    "WALL_CLOCK",
    "ENV_READ",
    "IO",
    "GLOBAL_MUTATION",
    "OBS_WRITE",
    "EFFECT_ORDER",
    "OBS_SINGLETON_QUALS",
    "CHECKS_SINGLETON_QUALS",
    "SINGLETON_MUTATORS",
    "EffectSite",
    "FlowAnalysis",
    "analyze_graph",
    "analyze_paths",
    "render_effects",
]

SEEDED_RNG = "SEEDED_RNG"
UNSEEDED_RNG = "UNSEEDED_RNG"
WALL_CLOCK = "WALL_CLOCK"
ENV_READ = "ENV_READ"
IO = "IO"
GLOBAL_MUTATION = "GLOBAL_MUTATION"
OBS_WRITE = "OBS_WRITE"

#: The bottom of the lattice: no observable effect.
PURE: frozenset[str] = frozenset()

#: Display/reporting order for effect names.
EFFECT_ORDER: tuple[str, ...] = (
    SEEDED_RNG,
    UNSEEDED_RNG,
    WALL_CLOCK,
    ENV_READ,
    IO,
    GLOBAL_MUTATION,
    OBS_WRITE,
)

#: Explicit-RNG constructors whose seededness depends on their arguments.
_SEEDED_CONSTRUCTORS = frozenset({"numpy.random.default_rng", "random.Random"})

#: Import-map quals of the observability singletons (re-export + home).
OBS_SINGLETON_QUALS = frozenset(
    {
        "repro.obs.OBS",
        "repro.obs.runtime.OBS",
        "repro.obs.FREC",
        "repro.obs.flightrec.FREC",
    }
)

#: Import-map quals of the invariant-checks runtime singleton.
CHECKS_SINGLETON_QUALS = frozenset(
    {"repro.checks.CHECKS", "repro.checks.runtime.CHECKS"}
)

#: Singleton methods that swap global runtime state.
SINGLETON_MUTATORS = frozenset({"enable", "disable", "reset"})

_OBS_RUNTIME_QUALS = frozenset({"repro.obs.OBS", "repro.obs.runtime.OBS"})
_FREC_QUALS = frozenset({"repro.obs.FREC", "repro.obs.flightrec.FREC"})
_OBS_TOUCH_METHODS = frozenset(
    {"event", "counter", "gauge", "histogram", "sample"}
)
_FREC_TOUCH_METHODS = frozenset(
    {
        "emit",
        "emit_send",
        "emit_deliver",
        "set_cause",
        "clear_cause",
        "begin_run",
        "end_run",
    }
)
_HEALTH_HELPERS = frozenset(
    {
        "record_coverage_health",
        "record_energy_health",
        "record_protocol_health",
    }
)

_IO_BUILTINS = frozenset({"open", "print", "input"})
_IO_EXTERNAL_PREFIXES = (
    "sys.stdout",
    "sys.stderr",
    "sys.stdin",
    "subprocess.",
    "shutil.",
    "tempfile.",
)
_IO_METHOD_ATTRS = frozenset(
    {
        "read_text",
        "read_bytes",
        "write_text",
        "write_bytes",
        "mkdir",
        "unlink",
        "touch",
        "rename",
        "replace_file",
    }
)


def render_effects(effects: frozenset[str]) -> str:
    """``'PURE'`` or ``'+'``-joined effect names in :data:`EFFECT_ORDER`."""
    if not effects:
        return "PURE"
    return "+".join(e for e in EFFECT_ORDER if e in effects)


def _in_package(module: str, package: str) -> bool:
    return module == package or module.startswith(package + ".")


@dataclass(frozen=True)
class EffectSite:
    """Where a base effect originates inside one function body."""

    effect: str
    qualname: str
    path: str
    lineno: int
    col: int
    #: Qualified callable / mutation target the classification matched
    #: (``time.time``, ``repro.obs.runtime.OBS``), when known.
    target: str | None
    #: Human-readable classification (``"calls `time.time`"``).
    detail: str


def _base_effects(
    fn: FunctionNode,
) -> tuple[frozenset[str], tuple[EffectSite, ...]]:
    """Classify one function's own sites into (effects, witness sites)."""
    effects: set[str] = set()
    sites: list[EffectSite] = []

    def emit(
        effect: str, lineno: int, col: int, target: str | None, detail: str
    ) -> None:
        effects.add(effect)
        sites.append(
            EffectSite(
                effect=effect,
                qualname=fn.qualname,
                path=fn.path,
                lineno=lineno,
                col=col,
                target=target,
                detail=detail,
            )
        )

    in_obs = _in_package(fn.module, "repro.obs")
    for site in fn.calls:
        if site.kind != "call":
            continue
        ext = site.external
        if ext is not None:
            if ext in _WALL_CLOCK_OR_ENTROPY or ext.startswith("secrets."):
                emit(
                    WALL_CLOCK, site.lineno, site.col, ext, f"calls `{ext}`"
                )
            elif ext in _SEEDED_CONSTRUCTORS:
                if site.has_args:
                    emit(
                        SEEDED_RNG, site.lineno, site.col, ext,
                        f"constructs seeded `{ext}(...)`",
                    )
                else:
                    emit(
                        UNSEEDED_RNG, site.lineno, site.col, ext,
                        f"constructs un-seeded `{ext}()` (draws OS entropy)",
                    )
            elif ext.startswith("numpy.random."):
                tail = ext.split(".")[-1]
                if tail in _NUMPY_RANDOM_ALLOWED:
                    effect = SEEDED_RNG if site.has_args else UNSEEDED_RNG
                    emit(
                        effect, site.lineno, site.col, ext,
                        f"constructs `{ext}`"
                        + ("" if site.has_args else " with no seed"),
                    )
                else:
                    emit(
                        UNSEEDED_RNG, site.lineno, site.col, ext,
                        f"calls legacy global-RNG `{ext}`",
                    )
            elif ext.startswith("random.") and ext != "random.Random":
                emit(
                    UNSEEDED_RNG, site.lineno, site.col, ext,
                    f"calls stdlib global-RNG `{ext}`",
                )
            elif ext.startswith("os.environ") or ext in (
                "os.getenv",
                "os.getenvb",
            ):
                emit(ENV_READ, site.lineno, site.col, ext, f"reads `{ext}`")
            elif ext.startswith(_IO_EXTERNAL_PREFIXES):
                emit(IO, site.lineno, site.col, ext, f"calls `{ext}`")
        if site.name in _IO_BUILTINS and not site.targets:
            emit(
                IO, site.lineno, site.col, site.name,
                f"calls builtin `{site.name}(...)`",
            )
        if (
            site.attr in _IO_METHOD_ATTRS
            and not site.targets
            and site.owner is None
        ):
            emit(
                IO, site.lineno, site.col, site.attr,
                f"filesystem method call `.{site.attr}(...)`",
            )
        # singleton state switches: OBS.enable() / CHECKS.reset() ...
        if site.attr in SINGLETON_MUTATORS and site.owner is not None:
            if (
                site.owner in OBS_SINGLETON_QUALS
                or site.owner in CHECKS_SINGLETON_QUALS
            ):
                emit(
                    GLOBAL_MUTATION, site.lineno, site.col, site.owner,
                    f"calls `{site.owner.rsplit('.', 1)[-1]}."
                    f"{site.attr}()` (global runtime state)",
                )
        # unguarded telemetry touchpoints outside repro.obs
        if not in_obs and not site.guarded:
            touched: str | None = None
            if site.owner in _OBS_RUNTIME_QUALS and (
                site.attr in _OBS_TOUCH_METHODS
            ):
                touched = f"OBS.{site.attr}"
            elif site.owner in _FREC_QUALS and (
                site.attr in _FREC_TOUCH_METHODS
            ):
                touched = f"FREC.{site.attr}"
            elif site.name in _HEALTH_HELPERS:
                touched = site.name
            elif (
                ext is not None
                and ext.startswith("repro.obs")
                and ext.rsplit(".", 1)[-1] in _HEALTH_HELPERS
            ):
                touched = ext.rsplit(".", 1)[-1]
            if touched is not None:
                emit(
                    OBS_WRITE, site.lineno, site.col, site.owner or ext,
                    f"unguarded telemetry touchpoint `{touched}(...)`",
                )
    for mut in fn.mutations:
        emit(
            GLOBAL_MUTATION, mut.lineno, mut.col, mut.target,
            f"mutates global state `{mut.target}`",
        )
    return frozenset(effects), tuple(sites)


def _edge_contribution(
    site: CallSite, callee: FunctionNode, callee_summary: frozenset[str]
) -> frozenset[str]:
    """What one call/ref edge adds to the caller's summary."""
    if _in_package(callee.module, "repro.obs"):
        return PURE
    if site.guarded:
        return callee_summary - {OBS_WRITE}
    return callee_summary


@dataclass
class FlowAnalysis:
    """Computed effect summaries plus the graph they came from."""

    graph: CallGraph
    base: dict[str, frozenset[str]]
    summaries: dict[str, frozenset[str]]
    sites: dict[str, tuple[EffectSite, ...]]
    n_sccs: int

    @property
    def n_functions(self) -> int:
        return len(self.graph.functions)

    @property
    def n_edges(self) -> int:
        return sum(len(ts) for ts in self.graph.edges().values())

    def summary(self, qual: str) -> frozenset[str]:
        """Transitive effect set of one function (PURE if unknown)."""
        return self.summaries.get(qual, PURE)

    def effect_sites(self, qual: str, effect: str) -> tuple[EffectSite, ...]:
        """Base sites of ``effect`` inside ``qual`` itself."""
        return tuple(
            s for s in self.sites.get(qual, ()) if s.effect == effect
        )

    def is_post_fixpoint(self) -> bool:
        """Re-apply the transfer function once; True if nothing grows.

        The acceptance gate for "reaches a fixpoint": every function's
        base effects plus its (masked) callee contributions must already
        be contained in its computed summary.
        """
        for qual in sorted(self.graph.functions):
            effective = set(self.base.get(qual, PURE))
            for site in self.graph.functions[qual].calls:
                for target in site.targets:
                    callee = self.graph.functions.get(target)
                    if callee is None:
                        continue
                    effective |= _edge_contribution(
                        site, callee, self.summaries[target]
                    )
            if not effective <= self.summaries[qual]:
                return False
        return True

    def witness(
        self,
        root: str,
        effect: str,
        accept: "Callable[[EffectSite], bool] | None" = None,
    ) -> tuple[list[str], EffectSite] | None:
        """Shortest call chain from ``root`` to a base site of ``effect``.

        BFS over un-masked propagation edges, deterministic (sorted
        neighbour order).  ``accept`` narrows which base sites terminate
        the search (e.g. only OBS-singleton mutations); intermediate
        functions whose base sites do not match are traversed through.
        Returns ``(chain-of-qualnames, terminal-site)`` or None.
        """
        if root not in self.graph.functions:
            return None
        queue: list[tuple[str, tuple[str, ...]]] = [(root, (root,))]
        visited = {root}
        while queue:
            qual, chain = queue.pop(0)
            for site in self.effect_sites(qual, effect):
                if accept is None or accept(site):
                    return list(chain), site
            neighbours: set[str] = set()
            for site_ in self.graph.functions[qual].calls:
                for target in site_.targets:
                    callee = self.graph.functions.get(target)
                    if callee is None or target in visited:
                        continue
                    if effect not in _edge_contribution(
                        site_, callee, self.summaries[target]
                    ):
                        continue
                    neighbours.add(target)
            for target in sorted(neighbours):
                visited.add(target)
                queue.append((target, chain + (target,)))
        return None


def analyze_graph(graph: CallGraph) -> FlowAnalysis:
    """Propagate base effects to a fixpoint over the SCC condensation."""
    base: dict[str, frozenset[str]] = {}
    sites: dict[str, tuple[EffectSite, ...]] = {}
    for qual in sorted(graph.functions):
        base[qual], sites[qual] = _base_effects(graph.functions[qual])

    components = strongly_connected_components(graph.edges())
    summaries: dict[str, frozenset[str]] = {}
    for component in components:
        members = set(component)
        effects: set[str] = set()
        for qual in sorted(members):
            effects |= base[qual]
            for site in graph.functions[qual].calls:
                for target in site.targets:
                    callee = graph.functions.get(target)
                    if callee is None or target in members:
                        continue
                    effects |= _edge_contribution(
                        site, callee, summaries[target]
                    )
        shared = frozenset(effects)
        for qual in sorted(members):
            summaries[qual] = shared
    return FlowAnalysis(
        graph=graph,
        base=base,
        summaries=summaries,
        sites=sites,
        n_sccs=len(components),
    )


def analyze_paths(paths: Iterable[str | Path]) -> FlowAnalysis:
    """Build the call graph for ``paths`` and run the effect analysis."""
    return analyze_graph(build_call_graph(paths))


def iter_summaries(
    analysis: FlowAnalysis,
) -> Iterator[tuple[str, frozenset[str]]]:
    """(qualname, summary) pairs in deterministic qualname order."""
    for qual in sorted(analysis.summaries):
        yield qual, analysis.summaries[qual]
