"""Transitive contract rules over the computed effect summaries.

Each rule closes an existing local rule over the call graph:

* **FLOW001** (closure of DET002) — no function in ``repro.core``,
  ``repro.sim`` or ``repro.field`` may *transitively* reach a
  wall-clock/entropy read or un-seeded RNG construction.  Findings are
  reported at the **frontier**: the protected function whose own body
  has the effect, or whose call edge leaves the protected packages
  carrying it — deeper protected ancestors are not re-flagged, so one
  leak produces one finding, not a cascade.
* **FLOW002** (closure of PAR001) — every function shipped to a
  ``repro.parallel`` worker (``pool.submit(f, ...)``,
  ``initializer=``) must be worker-pure all the way down: no wall
  clock, no un-seeded RNG, no mutation of the OBS/FREC observability
  singletons anywhere in its transitive call tree.  Worker-local state
  (the per-process cache, ``CHECKS.enable()`` in the initializer) is
  sanctioned and exempt.
* **FLOW003** (closure of OBS001–OBS004) — an *unguarded* call edge
  into a function whose summary carries ``OBS_WRITE`` re-opens the
  guard hole the local rules closed at the touchpoint itself; the edge
  is flagged at the call site, one finding per caller/callee pair.
* **DET003** — iteration over a ``set`` (literal, ``set()``/
  ``frozenset()`` call, set comprehension, or a local assigned from
  one) in effect-``PURE``/``SEEDED_RNG`` library code.  Set order
  varies across processes (hash randomisation), so pure compute code
  iterating one un-``sorted()`` is exactly where silent tie-break
  drift enters.  ``dict`` iteration is exempt: dicts preserve
  insertion order.
* **PAR001** (re-homed from the per-file linter) — un-seeded explicit
  RNG construction or OBS/FREC singleton mutation *inside* function
  bodies of ``repro.parallel`` itself, now detected from the effect
  sites instead of per-file heuristics.

Witness chains come from :meth:`~repro.checks.flow.effects.
FlowAnalysis.witness` (shortest path, deterministic), so a FLOW002
message names the frames between the submitted function and the
offending call.  Every finding carries a line-number-free ``key``
(``rule|path|qualname|detail``) used by the grow-only baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

from repro.checks.flow.callgraph import FunctionNode
from repro.checks.flow.effects import (
    GLOBAL_MUTATION,
    OBS_SINGLETON_QUALS,
    OBS_WRITE,
    SEEDED_RNG,
    UNSEEDED_RNG,
    WALL_CLOCK,
    EffectSite,
    FlowAnalysis,
    _edge_contribution,
    _SEEDED_CONSTRUCTORS,
)
from repro.checks.lint.framework import Finding, parse_suppressions

__all__ = [
    "FLOW_RULE_SUMMARIES",
    "PROTECTED_PACKAGES",
    "FlowFinding",
    "flow_findings",
    "apply_suppressions",
]

#: Packages whose result-producing code must stay deterministic (FLOW001).
PROTECTED_PACKAGES: tuple[str, ...] = ("repro.core", "repro.sim", "repro.field")

#: Effects FLOW001/FLOW002 forbid outright.
_FORBIDDEN_DETERMINISM = (WALL_CLOCK, UNSEEDED_RNG)

FLOW_RULE_SUMMARIES: dict[str, str] = {
    "FLOW001": (
        "repro.core/sim/field must not transitively reach wall-clock or "
        "entropy reads (interprocedural closure of DET002)"
    ),
    "FLOW002": (
        "functions submitted to repro.parallel workers must be "
        "worker-pure all the way down: no wall clock, no un-seeded RNG, "
        "no OBS/FREC singleton mutation (closure of PAR001)"
    ),
    "FLOW003": (
        "unguarded calls into functions that perform unguarded OBS/FREC "
        "telemetry writes re-open the guard hole (closure of OBS001-OBS004)"
    ),
    "DET003": (
        "no un-sorted() set iteration in effect-PURE/SEEDED_RNG library "
        "code; set order varies across processes"
    ),
    "PAR001": (
        "repro.parallel must not construct un-seeded RNGs or mutate the "
        "global OBS runtime (computed from flow effect sites)"
    ),
}


@dataclass(frozen=True, order=True)
class FlowFinding:
    """A framework :class:`Finding` plus its line-stable baseline key."""

    finding: Finding
    key: str


def _in_any_package(module: str, packages: tuple[str, ...]) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".") for pkg in packages
    )


def _targets_obs_singleton(site: EffectSite) -> bool:
    """Does a GLOBAL_MUTATION site hit the OBS/FREC singletons?"""
    if site.target is None:
        return False
    return site.target in OBS_SINGLETON_QUALS or any(
        site.target.startswith(qual + ".")
        for qual in sorted(OBS_SINGLETON_QUALS)
    )


def _chain_text(chain: list[str], site: EffectSite) -> str:
    """Render a witness chain plus the terminal site location."""
    arrow = " -> ".join(chain)
    return f"{arrow}; {site.detail} at {site.path}:{site.lineno}"


def _finding(
    fn: FunctionNode, lineno: int, col: int, rule: str, message: str
) -> Finding:
    return Finding(
        path=fn.path, line=lineno, col=col, rule=rule, message=message
    )


# ---------------------------------------------------------------------------
# FLOW001 — protected packages stay clock/entropy free
# ---------------------------------------------------------------------------


def _flow001(analysis: FlowAnalysis) -> Iterator[FlowFinding]:
    graph = analysis.graph
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        if not _in_any_package(fn.module, PROTECTED_PACKAGES):
            continue
        for effect in _FORBIDDEN_DETERMINISM:
            if effect not in analysis.summaries[qual]:
                continue
            if not _is_frontier(analysis, qual, effect):
                continue
            witness = analysis.witness(qual, effect)
            if witness is not None:
                chain, site = witness
                detail = f"{effect} via `{site.target or site.detail}`"
                message = (
                    f"`{qual}` in protected package reaches {effect}: "
                    f"{_chain_text(chain, site)}; runs must be "
                    "bit-reproducible from their seed (FLOW001 is the "
                    "interprocedural closure of DET002)"
                )
            else:
                detail = effect
                message = (
                    f"`{qual}` in protected package carries {effect} in "
                    "its transitive effect summary (FLOW001)"
                )
            yield FlowFinding(
                finding=_finding(fn, fn.lineno, 1, "FLOW001", message),
                key=f"FLOW001|{fn.path}|{qual}|{detail}",
            )


def _is_frontier(analysis: FlowAnalysis, qual: str, effect: str) -> bool:
    """Is ``qual`` where ``effect`` enters the protected packages?"""
    if effect in analysis.base[qual]:
        return True
    graph = analysis.graph
    for site in graph.functions[qual].calls:
        for target in site.targets:
            callee = graph.functions.get(target)
            if callee is None:
                continue
            if _in_any_package(callee.module, PROTECTED_PACKAGES):
                continue
            if effect in _edge_contribution(
                site, callee, analysis.summaries[target]
            ):
                return True
    return False


# ---------------------------------------------------------------------------
# FLOW002 — worker-submitted functions are worker-pure all the way down
# ---------------------------------------------------------------------------


def _flow002(analysis: FlowAnalysis) -> Iterator[FlowFinding]:
    graph = analysis.graph
    for root in graph.worker_roots():
        fn = graph.functions[root]
        summary = analysis.summaries[root]
        for effect in _FORBIDDEN_DETERMINISM:
            if effect not in summary:
                continue
            witness = analysis.witness(root, effect)
            chain_part = (
                _chain_text(*witness)
                if witness is not None
                else f"{effect} (witness path masked)"
            )
            detail = (
                f"{effect} via `{witness[1].target or witness[1].detail}`"
                if witness is not None
                else effect
            )
            yield FlowFinding(
                finding=_finding(
                    fn, fn.lineno, 1, "FLOW002",
                    f"worker-submitted `{root}` is not worker-pure: "
                    f"{chain_part}; two workers (or two runs) would "
                    "diverge (FLOW002 is the interprocedural closure of "
                    "PAR001)",
                ),
                key=f"FLOW002|{fn.path}|{root}|{detail}",
            )
        if GLOBAL_MUTATION in summary:
            witness = analysis.witness(
                root, GLOBAL_MUTATION, accept=_targets_obs_singleton
            )
            if witness is not None:
                chain, site = witness
                yield FlowFinding(
                    finding=_finding(
                        fn, fn.lineno, 1, "FLOW002",
                        f"worker-submitted `{root}` mutates the global "
                        f"observability runtime: {_chain_text(chain, site)}; "
                        "worker state may only flow through the "
                        "repro.obs.bridge capture/merge seam (FLOW002)",
                    ),
                    key=(
                        f"FLOW002|{fn.path}|{root}|GLOBAL_MUTATION via "
                        f"`{site.target}`"
                    ),
                )


# ---------------------------------------------------------------------------
# FLOW003 — unguarded edges into OBS-writing functions
# ---------------------------------------------------------------------------


def _flow003(analysis: FlowAnalysis) -> Iterator[FlowFinding]:
    graph = analysis.graph
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        if not fn.module.startswith("repro"):
            continue
        if _in_any_package(fn.module, ("repro.obs",)):
            continue
        flagged: set[str] = set()
        for site in fn.calls:
            if site.guarded:
                continue
            for target in sorted(site.targets):
                callee = graph.functions.get(target)
                if callee is None or target in flagged:
                    continue
                if _in_any_package(callee.module, ("repro.obs",)):
                    continue
                if OBS_WRITE not in analysis.summaries[target]:
                    continue
                flagged.add(target)
                yield FlowFinding(
                    finding=_finding(
                        fn, site.lineno, site.col + 1, "FLOW003",
                        f"unguarded call to `{target}`, which performs "
                        "unguarded OBS/FREC telemetry writes; either "
                        "guard this call with `if OBS.enabled:` or fix "
                        "the guard at the touchpoint (FLOW003 is the "
                        "interprocedural closure of OBS001-OBS004)",
                    ),
                    key=f"FLOW003|{fn.path}|{qual}|calls {target}",
                )


# ---------------------------------------------------------------------------
# DET003 — un-sorted set iteration in effect-pure library code
# ---------------------------------------------------------------------------

_PURE_OR_SEEDED = frozenset({SEEDED_RNG})


def _det003(analysis: FlowAnalysis) -> Iterator[FlowFinding]:
    graph = analysis.graph
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        if not fn.module.startswith("repro"):
            continue
        if not analysis.summaries[qual] <= _PURE_OR_SEEDED:
            continue
        set_vars = _set_typed_locals(fn.node)
        for node, what in _set_iterations(fn.node, set_vars):
            yield FlowFinding(
                finding=_finding(
                    fn, node.lineno, node.col_offset + 1, "DET003",
                    f"iteration over {what} in effect-pure `{qual}`; set "
                    "order varies across processes — wrap the iterable "
                    "in `sorted(...)` (DET003)",
                ),
                key=f"DET003|{fn.path}|{qual}|{what}",
            )


def _own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested ``def``s."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_set_expr(expr: ast.AST) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in ("set", "frozenset")
    )


def _set_typed_locals(root: ast.AST) -> set[str]:
    """Local names assigned from a set literal/constructor/comprehension."""
    names: set[str] = set()
    for node in _own_nodes(root):
        value: ast.AST | None = None
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, list(node.targets)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        if value is not None and _is_set_expr(value):
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _set_iterations(
    root: ast.AST, set_vars: set[str]
) -> list[tuple[ast.expr, str]]:
    """(node, description) for every set-typed iteration point."""

    def describe(expr: ast.expr) -> str | None:
        if _is_set_expr(expr):
            return "a `set` expression"
        if isinstance(expr, ast.Name) and expr.id in set_vars:
            return f"the `set` local `{expr.id}`"
        return None

    out: list[tuple[ast.expr, str]] = []
    for node in _own_nodes(root):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            what = describe(node.iter)
            if what is not None:
                out.append((node.iter, what))
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            for gen in node.generators:
                what = describe(gen.iter)
                if what is not None:
                    out.append((gen.iter, what))
    return sorted(
        out, key=lambda pair: (pair[0].lineno, pair[0].col_offset)
    )


# ---------------------------------------------------------------------------
# PAR001 — re-homed worker-discipline rule over effect sites
# ---------------------------------------------------------------------------


def _par001(analysis: FlowAnalysis) -> Iterator[FlowFinding]:
    graph = analysis.graph
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        if not _in_any_package(fn.module, ("repro.parallel",)):
            continue
        for site in analysis.sites.get(qual, ()):
            if (
                site.effect == UNSEEDED_RNG
                and site.target in _SEEDED_CONSTRUCTORS
            ):
                yield FlowFinding(
                    finding=_finding(
                        fn, site.lineno, site.col + 1, "PAR001",
                        f"un-seeded `{site.target}()` in repro.parallel; "
                        "workers must derive all randomness from their "
                        "cell's seed or two runs of the same sweep will "
                        "disagree",
                    ),
                    key=f"PAR001|{fn.path}|{qual}|unseeded {site.target}",
                )
            elif site.effect == GLOBAL_MUTATION and _targets_obs_singleton(
                site
            ):
                yield FlowFinding(
                    finding=_finding(
                        fn, site.lineno, site.col + 1, "PAR001",
                        f"mutation of `{site.target}` in repro.parallel; "
                        "global OBS state may only be switched through "
                        "the repro.obs.bridge capture/merge seam",
                    ),
                    key=f"PAR001|{fn.path}|{qual}|mutates {site.target}",
                )


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

_ALL_RULES: tuple[Callable[[FlowAnalysis], Iterator[FlowFinding]], ...] = (
    _flow001,
    _flow002,
    _flow003,
    _det003,
    _par001,
)


def flow_findings(analysis: FlowAnalysis) -> list[FlowFinding]:
    """Run every flow rule; findings sorted by location, de-duplicated."""
    out: set[FlowFinding] = set()
    for rule in _ALL_RULES:
        out.update(rule(analysis))
    return sorted(out)


def apply_suppressions(findings: list[FlowFinding]) -> list[FlowFinding]:
    """Drop findings silenced by ``# checks: ignore[CODE]`` on their line.

    Unlike the linter, unused suppressions are *not* re-reported here —
    the per-file linter already owns SUP001 for the same files.
    """
    cache: dict[str, dict[int, set[str]]] = {}
    kept: list[FlowFinding] = []
    for ff in findings:
        path = ff.finding.path
        if path not in cache:
            try:
                source = Path(path).read_text(encoding="utf-8")
            except OSError:
                source = ""
            cache[path] = parse_suppressions(source)
        codes = cache[path].get(ff.finding.line, set())
        if ff.finding.rule not in codes:
            kept.append(ff)
    return kept
