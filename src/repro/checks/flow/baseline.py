"""Grow-only baseline for flow findings: new ones fail, old ones shrink.

The analyzer launched against a tree that already contained a handful of
sanctioned-but-flagged patterns (CHA over-approximation noise, seams the
rules cannot see are safe).  Those live in ``tools/flow_baseline.json``
as a **multiset of line-stable keys** (``rule|path|qualname|detail``) —
no line numbers, so pure code motion does not churn the file.  The
contract is a ratchet:

* a finding whose key is *not* covered by the baseline is an error —
  the debt may not grow;
* a baseline entry with no matching finding is *also* an error — the
  fix landed, so the entry must be deleted (the baseline may only
  shrink, it cannot silently hoard headroom).

``python -m repro.checks.flow --update-baseline`` regenerates the file
from the current findings (for the initial capture or after deliberate
triage); code review owns judging whether an ``--update-baseline`` diff
is a legitimate shrink or an attempted grow.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.checks.flow.rules import FlowFinding

__all__ = [
    "DEFAULT_BASELINE",
    "BaselineReport",
    "check_baseline",
    "load_baseline",
    "write_baseline",
]

#: Repo-root-relative home of the checked-in baseline.
DEFAULT_BASELINE = Path("tools") / "flow_baseline.json"

_VERSION = 1


@dataclass
class BaselineReport:
    """Outcome of matching findings against the baseline multiset."""

    #: Findings not covered by the baseline — errors (debt may not grow).
    new: list[FlowFinding]
    #: Findings absorbed by a baseline entry — tolerated, not reported.
    matched: list[FlowFinding]
    #: Baseline keys (with multiplicity suffix) no finding matched —
    #: errors (the baseline may only shrink).
    stale: list[str]

    @property
    def ok(self) -> bool:
        return not self.new and not self.stale


def load_baseline(path: Path) -> dict[str, int]:
    """Key -> multiplicity; a missing file is an empty baseline."""
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data.get("entries", {})
    return {str(key): int(count) for key, count in entries.items()}


def write_baseline(findings: list[FlowFinding], path: Path) -> None:
    """Serialize the current findings as the new baseline multiset."""
    counts: dict[str, int] = {}
    for ff in findings:
        counts[ff.key] = counts.get(ff.key, 0) + 1
    payload = {
        "version": _VERSION,
        "comment": (
            "Grow-only flow-analysis baseline: new findings fail, entries "
            "whose finding disappeared must be removed.  Regenerate with "
            "`python -m repro.checks.flow --update-baseline`."
        ),
        "entries": {key: counts[key] for key in sorted(counts)},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def check_baseline(
    findings: list[FlowFinding], baseline: dict[str, int]
) -> BaselineReport:
    """Match findings against the multiset; leftovers on either side err.

    >>> from repro.checks.lint.framework import Finding
    >>> ff = FlowFinding(
    ...     finding=Finding("a.py", 3, 1, "FLOW001", "msg"),
    ...     key="FLOW001|a.py|a.f|WALL_CLOCK",
    ... )
    >>> check_baseline([ff], {}).ok
    False
    >>> report = check_baseline([ff], {"FLOW001|a.py|a.f|WALL_CLOCK": 1})
    >>> report.ok, len(report.matched)
    (True, 1)
    >>> check_baseline([], {"FLOW001|a.py|a.f|WALL_CLOCK": 1}).stale
    ['FLOW001|a.py|a.f|WALL_CLOCK']
    """
    remaining = dict(baseline)
    new: list[FlowFinding] = []
    matched: list[FlowFinding] = []
    for ff in findings:
        left = remaining.get(ff.key, 0)
        if left > 0:
            remaining[ff.key] = left - 1
            matched.append(ff)
        else:
            new.append(ff)
    stale: list[str] = []
    for key in sorted(remaining):
        count = remaining[key]
        if count > 0:
            stale.extend([key] * count)
    return BaselineReport(new=new, matched=matched, stale=stale)
