"""Whole-program effect analysis: interprocedural purity and guard checking.

The per-file linter (:mod:`repro.checks.lint`) sees one call site at a
time; this package sees the whole call graph.  It parses every module
under the given paths, builds a module-level call graph (import-map name
resolution, a lightweight class/attribute index for method dispatch,
reference edges for callbacks and decorators), assigns each function a
*base* effect set from a small lattice —

========================  ==============================================
``PURE``                  no observable effect (the empty set)
``SEEDED_RNG``            constructs an explicitly seeded generator
``UNSEEDED_RNG``          constructs a generator from OS entropy
``WALL_CLOCK``            reads the clock or OS entropy sources
``ENV_READ``              reads ``os.environ``
``IO``                    opens files / writes to stdio
``GLOBAL_MUTATION``       mutates module-global or singleton state
``OBS_WRITE``             unguarded OBS/FREC telemetry touchpoint
========================  ==============================================

— and propagates effects to a fixpoint over the SCC-condensed graph
(one exact bottom-up pass; cycles share one summary).  On top of the
summaries it enforces the *transitive* contracts the local rules only
approximate:

========  ============================================================
FLOW001   nothing in ``repro.core``/``repro.sim``/``repro.field`` may
          transitively reach wall-clock/entropy (closure of DET002)
FLOW002   functions shipped to ``repro.parallel`` workers are
          worker-pure all the way down (closure of PAR001)
FLOW003   calls into functions that perform unguarded OBS/FREC writes
          must themselves sit under an enabled guard on every path
          (closure of OBS001-OBS004)
DET003    no unsorted ``set`` iteration in effect-pure library code
PAR001    un-seeded RNG / OBS-singleton mutation inside
          ``repro.parallel`` itself (re-homed from the per-file rule)
========  ============================================================

Findings reuse the lint framework's :class:`~repro.checks.lint.framework.
Finding` type and ``# checks: ignore[CODE]`` suppressions; surviving
findings are gated by the grow-only baseline ``tools/flow_baseline.json``
(:mod:`repro.checks.flow.baseline`).  Run as ``python -m repro.checks.flow
src`` or through the ``decor check`` aggregate.  See
``docs/static_analysis.md``.
"""

from repro.checks.flow.callgraph import (
    CallGraph,
    CallSite,
    FunctionNode,
    build_call_graph,
)
from repro.checks.flow.effects import (
    EFFECT_ORDER,
    ENV_READ,
    GLOBAL_MUTATION,
    IO,
    OBS_WRITE,
    PURE,
    SEEDED_RNG,
    UNSEEDED_RNG,
    WALL_CLOCK,
    EffectSite,
    FlowAnalysis,
    analyze_paths,
)
from repro.checks.flow.rules import FLOW_RULE_SUMMARIES, FlowFinding, flow_findings
from repro.checks.flow.baseline import BaselineReport, check_baseline, write_baseline

__all__ = [
    "CallGraph",
    "CallSite",
    "FunctionNode",
    "build_call_graph",
    "EFFECT_ORDER",
    "PURE",
    "SEEDED_RNG",
    "UNSEEDED_RNG",
    "WALL_CLOCK",
    "ENV_READ",
    "IO",
    "GLOBAL_MUTATION",
    "OBS_WRITE",
    "EffectSite",
    "FlowAnalysis",
    "analyze_paths",
    "FLOW_RULE_SUMMARIES",
    "FlowFinding",
    "flow_findings",
    "BaselineReport",
    "check_baseline",
    "write_baseline",
]
