"""CLI: ``python -m repro.checks.flow [paths...]``.

Runs the whole-program effect analysis, applies ``# checks:
ignore[CODE]`` suppressions, gates the surviving findings against the
grow-only baseline, and exits non-zero on any new finding or stale
baseline entry.  ``--summaries``/``--stats`` expose the computed
summaries for humans; ``--update-baseline`` recaptures the baseline
after deliberate triage.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.checks.flow.baseline import (
    DEFAULT_BASELINE,
    check_baseline,
    load_baseline,
    write_baseline,
)
from repro.checks.flow.effects import analyze_paths, render_effects
from repro.checks.flow.rules import apply_suppressions, flow_findings


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks.flow",
        description=(
            "Interprocedural effect analysis: FLOW001-FLOW003, DET003, "
            "PAR001 over the whole call graph."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding; do not consult the baseline",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--summaries",
        metavar="PREFIX",
        nargs="?",
        const="",
        default=None,
        help=(
            "print per-function effect summaries (optionally only "
            "qualnames starting with PREFIX)"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print graph/analysis statistics",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    analysis = analyze_paths(args.paths)
    findings = apply_suppressions(flow_findings(analysis))

    if args.stats:
        print(
            f"functions={analysis.n_functions} edges={analysis.n_edges} "
            f"sccs={analysis.n_sccs} "
            f"fixpoint={'yes' if analysis.is_post_fixpoint() else 'NO'}"
        )
    if args.summaries is not None:
        for qual in sorted(analysis.summaries):
            if qual.startswith(args.summaries):
                print(f"{qual}: {render_effects(analysis.summaries[qual])}")

    if args.update_baseline:
        write_baseline(findings, args.baseline)
        print(
            f"wrote {len(findings)} finding(s) to {args.baseline}",
            file=sys.stderr,
        )
        return 0

    baseline: dict[str, int] = (
        {} if args.no_baseline else load_baseline(args.baseline)
    )
    report = check_baseline(findings, baseline)
    for ff in report.new:
        print(ff.finding.render())
    for key in report.stale:
        print(
            f"{args.baseline}: stale baseline entry `{key}` — the "
            "finding is gone; remove the entry (the baseline may only "
            "shrink)"
        )
    if not report.ok:
        n = len(report.new)
        print(
            f"flow: {n} new finding(s), {len(report.stale)} stale "
            "baseline entr(ies)",
            file=sys.stderr,
        )
        return 1
    suffix = (
        f" ({len(report.matched)} baselined)" if report.matched else ""
    )
    print(
        f"flow: clean — {analysis.n_functions} functions, "
        f"{analysis.n_edges} edges, {analysis.n_sccs} SCCs{suffix}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
