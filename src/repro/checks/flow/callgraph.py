"""Module-level call graph with lightweight name and method resolution.

One pass over every ``*.py`` file builds three indexes:

* **functions** — every ``def`` (module-level, method, nested) keyed by
  dotted qualname (``repro.parallel._worker_init``,
  ``repro.experiments.runner.DeploymentCache.get``);
* **classes** — every class with its method table and raw base names, so
  method calls dispatch through the index;
* **modules** — each module's :class:`~repro.checks.lint.framework.
  ImportMap` plus its module-level names (singletons like ``OBS =
  ObsRuntime()``, mutable globals like ``_WORKER``), so re-export chains
  (``repro.obs.OBS`` -> ``repro.obs.runtime.OBS`` -> ``ObsRuntime``)
  resolve across files.

Call sites are resolved with, in order: local variable types (parameter
annotations, ``x = ClassName(...)`` constructor assignments, ``self``/
``cls``), import-map resolution, and — for otherwise-unknown receivers —
a class-hierarchy fallback over the method-name index (union of every
class defining that method, a sound over-approximation).  Ubiquitous
builtin-collection method names (``get``, ``items``, ``append``, ...)
are excluded from the fallback: they overwhelmingly hit builtin
receivers, and resolving them through the index would drown the summaries
in false edges.

Besides plain calls the walker records **reference edges**: a function
name passed as an argument (``pool.submit(_worker_run_cell, cell)``,
``initializer=_worker_init``, a ``key=`` callback) or used as a
decorator.  References propagate effects exactly like calls — whoever
holds the reference may invoke it — and carry the receiving callable's
name (``via``) so rules can recognise worker-submission seams.

Each call/reference site also records whether it sits under an
``if OBS.enabled:`` / ``if FREC.enabled:`` guard (including the
``if not X.enabled: return`` early-exit shape); guarded edges mask the
``OBS_WRITE`` effect during propagation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.checks.lint.framework import ImportMap, iter_python_files, module_name_for

__all__ = [
    "CallSite",
    "MutationSite",
    "FunctionNode",
    "ClassNode",
    "ModuleNode",
    "CallGraph",
    "build_call_graph",
    "strongly_connected_components",
]

#: Singleton names whose ``.enabled`` read forms a recognised guard.
GUARD_SINGLETONS = ("FREC", "OBS")

#: Method names never resolved through the class-hierarchy fallback —
#: overwhelmingly builtin dict/list/set/str/file receivers.
CHA_STOPLIST = frozenset(
    {
        "add", "append", "clear", "close", "copy", "count", "discard",
        "extend", "flush", "format", "get", "index", "insert", "items",
        "join", "keys", "pop", "popitem", "read", "readline", "remove",
        "reverse", "setdefault", "sort", "split", "strip", "update",
        "values", "write", "writelines",
    }
)


@dataclass(frozen=True)
class CallSite:
    """One resolved call or reference inside a function body."""

    #: Internal targets (function qualnames in the graph); empty when the
    #: call goes to an external/builtin callable.
    targets: tuple[str, ...]
    #: Import-map qualified external path (``time.time``) when resolvable.
    external: str | None
    #: Attribute name for method calls (``submit`` in ``pool.submit``).
    attr: str | None
    #: Bare callable name for ``Name(...)`` calls (``open``, ``print``).
    name: str | None
    #: Qualified owner of a method call when resolvable (``repro.obs.OBS``).
    owner: str | None
    lineno: int
    col: int
    #: True when the site sits under an OBS/FREC enabled guard.
    guarded: bool
    #: ``"call"``, ``"ref"`` (callback/nested-def reference) or
    #: ``"decorator"``.
    kind: str
    #: For references: the callable receiving the reference (``submit``)
    #: or the keyword name it was passed as (``initializer``).
    via: str | None = None
    #: True when the call carries any argument (seeded-RNG detection).
    has_args: bool = False


@dataclass(frozen=True)
class MutationSite:
    """A write to module-global or singleton state."""

    #: Qualified target when resolvable (``repro.obs.runtime.OBS``),
    #: else the raw global name (``_WORKER``).
    target: str
    #: ``"call"`` (``OBS.enable()``), ``"attr"`` (``OBS.enabled = ...``),
    #: ``"global"`` (``global X`` + store) or ``"store"`` (subscript or
    #: attribute store through a module-global name).
    kind: str
    lineno: int
    col: int


@dataclass
class FunctionNode:
    """One function/method definition in the graph."""

    qualname: str
    module: str
    path: str
    lineno: int
    name: str
    #: Owning class qualname for methods, else None.
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    calls: list[CallSite] = field(default_factory=list)
    mutations: list[MutationSite] = field(default_factory=list)


@dataclass
class ClassNode:
    """One class definition: method table plus raw base names."""

    qualname: str
    module: str
    bases: tuple[str, ...]
    methods: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleNode:
    """Per-module resolution context."""

    name: str
    path: str
    imports: ImportMap
    #: Module-level names bound to constructor calls: name -> raw class
    #: dotted path (``OBS`` -> ``ObsRuntime``).
    singletons: dict[str, str] = field(default_factory=dict)
    #: All module-level assigned names (mutation tracking).
    globals: set[str] = field(default_factory=set)
    #: Qualnames of this module's top-level functions and methods, in
    #: definition order — the pass-2 walk starts from exactly these.
    roots: list[str] = field(default_factory=list)


class CallGraph:
    """The whole-program index: functions, classes, modules, edges."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionNode] = {}
        self.classes: dict[str, ClassNode] = {}
        self.modules: dict[str, ModuleNode] = {}
        #: method name -> class qualnames defining it (CHA fallback).
        self.method_index: dict[str, list[str]] = {}

    # -- resolution --------------------------------------------------

    def resolve(self, qual: str) -> tuple[str, str] | None:
        """Resolve a dotted path to ``(kind, qualname)`` in the index.

        Kinds: ``"func"``, ``"class"`` or ``"singleton"`` (a module-level
        name bound to a constructor call; the qualname is its *class*).
        Follows re-export chains across modules; returns None for
        external names.
        """
        return self._resolve(qual, set())

    def _resolve(self, qual: str, seen: set[str]) -> tuple[str, str] | None:
        if qual in seen:
            return None
        seen.add(qual)
        if qual in self.functions:
            return ("func", qual)
        if qual in self.classes:
            return ("class", qual)
        # split into the longest module prefix we know + the remainder
        parts = qual.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            module = self.modules.get(prefix)
            if module is None:
                continue
            head, rest = parts[cut], parts[cut + 1 :]
            # a re-export: follow the imported name's own qualified path
            target = module.imports.aliases.get(head)
            if target is not None:
                return self._resolve(".".join([target, *rest]), seen)
            # a module-level singleton: resolve through its class
            raw_cls = module.singletons.get(head)
            if raw_cls is not None:
                resolved = self._resolve_raw(module, raw_cls, seen)
                if resolved is not None and resolved[0] == "class":
                    if rest:  # a method of the singleton's class
                        return self._method_of(resolved[1], rest[0])
                    return ("singleton", resolved[1])
            # a class defined in that module with a method tail
            cls_qual = f"{prefix}.{head}"
            if cls_qual in self.classes and rest:
                return self._method_of(cls_qual, rest[0])
            break
        return None

    def _resolve_raw(
        self, module: ModuleNode, raw: str, seen: set[str]
    ) -> tuple[str, str] | None:
        """Resolve a name as written inside ``module`` (local or import)."""
        local = f"{module.name}.{raw}"
        if local in self.classes or local in self.functions:
            return self._resolve(local, seen)
        mapped = module.imports.aliases.get(raw.split(".")[0])
        if mapped is not None:
            tail = raw.split(".")[1:]
            return self._resolve(".".join([mapped, *tail]), seen)
        return self._resolve(raw, seen)

    def _method_of(self, cls_qual: str, method: str) -> tuple[str, str] | None:
        """Look up ``method`` on a class, walking raw base names."""
        todo, visited = [cls_qual], set()
        while todo:
            current = todo.pop(0)
            if current in visited:
                continue
            visited.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if method in cls.methods:
                return ("func", cls.methods[method])
            module = self.modules.get(cls.module)
            for base in cls.bases:
                resolved = (
                    self._resolve_raw(module, base, set())
                    if module is not None
                    else None
                )
                if resolved is not None and resolved[0] == "class":
                    todo.append(resolved[1])
        return None

    def cha_targets(self, method: str) -> tuple[str, ...]:
        """Class-hierarchy fallback: every indexed ``method`` definition."""
        if method in CHA_STOPLIST:
            return ()
        return tuple(
            self.classes[cls].methods[method]
            for cls in self.method_index.get(method, ())
        )

    # -- derived views ----------------------------------------------

    def edges(self) -> dict[str, tuple[str, ...]]:
        """Adjacency over internal functions (all site kinds, sorted)."""
        out: dict[str, tuple[str, ...]] = {}
        for qual in sorted(self.functions):
            seen: set[str] = set()
            for site in self.functions[qual].calls:
                seen.update(t for t in site.targets if t in self.functions)
            out[qual] = tuple(sorted(seen))
        return out

    def worker_roots(self) -> list[str]:
        """Functions shipped to ``repro.parallel`` worker processes.

        Two populations, each an entry point FLOW002 analyzes all the
        way down:

        * a reference passed positionally to a pool-submission call
          (``.submit(...)``, ``.apply_async(...)``, ``.map(...)``) or
          as an ``initializer=`` keyword, inside the ``repro.parallel``
          package — that function will run in a worker;
        * shared-memory attach/detach helpers: any ``repro.parallel``
          function that opens a ``SharedMemory`` handle runs on one
          side of the process boundary or the other (the parent
          publishes segments, workers attach views), so it must be
          worker-pure too.
        """
        roots: set[str] = set()
        for qual in sorted(self.functions):
            fn = self.functions[qual]
            if not _in_package(fn.module, "repro.parallel"):
                continue
            for site in fn.calls:
                if site.kind == "ref" and site.via in _SUBMISSION_VIAS:
                    roots.update(
                        t for t in site.targets if t in self.functions
                    )
                elif _is_shared_memory_call(site):
                    roots.add(qual)
        return sorted(roots)


#: Receivers/keywords that ship a callable reference to another process:
#: executor and multiprocessing.Pool submission APIs plus the pool
#: initializer seam.
_SUBMISSION_VIAS = ("submit", "apply_async", "map", "initializer")


def _is_shared_memory_call(site: CallSite) -> bool:
    """True when the site constructs a ``SharedMemory`` handle."""
    if site.kind != "call":
        return False
    if (site.attr or site.name) == "SharedMemory":
        return True
    return bool(site.external) and site.external.endswith(".SharedMemory")


def _in_package(module: str, package: str) -> bool:
    return module == package or module.startswith(package + ".")


# ---------------------------------------------------------------------------
# builder
# ---------------------------------------------------------------------------


def build_call_graph(paths: Iterable[str | Path]) -> CallGraph:
    """Parse every ``*.py`` under ``paths`` into a :class:`CallGraph`.

    Files that do not parse are skipped (the linter's PARSE rule owns
    reporting those); files outside a ``src/`` tree get a module name of
    their file stem so fixtures still resolve locally.
    """
    graph = CallGraph()
    parsed: list[tuple[Path, str, ast.Module]] = []
    for path in iter_python_files(paths):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError:
            continue
        module = module_name_for(path) or path.stem
        parsed.append((path, module, tree))

    # pass 1: index every module's defs so cross-module calls resolve
    for path, module, tree in parsed:
        _index_module(graph, str(path), module, tree)
    # pass 2: resolve call sites with the full index available
    for path, module, tree in parsed:
        _walk_module(graph, str(path), module, tree)
    return graph


def _index_module(
    graph: CallGraph, path: str, module: str, tree: ast.Module
) -> None:
    node = ModuleNode(name=module, path=path, imports=ImportMap.of(tree))
    graph.modules[module] = node
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = _index_function(graph, path, module, stmt, cls=None)
            node.roots.append(fn.qualname)
        elif isinstance(stmt, ast.ClassDef):
            _index_class(graph, path, module, stmt)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                node.globals.add(target.id)
                value = stmt.value
                if (
                    value is not None
                    and isinstance(value, ast.Call)
                    and isinstance(value.func, (ast.Name, ast.Attribute))
                ):
                    raw = _raw_dotted(value.func)
                    if raw is not None:
                        node.singletons[target.id] = raw


def _index_function(
    graph: CallGraph,
    path: str,
    module: str,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    cls: str | None,
    prefix: str | None = None,
) -> FunctionNode:
    qual = f"{prefix or cls or module}.{node.name}"
    fn = FunctionNode(
        qualname=qual,
        module=module,
        path=path,
        lineno=node.lineno,
        name=node.name,
        cls=cls,
        node=node,
    )
    graph.functions[qual] = fn
    return fn


def _index_class(
    graph: CallGraph, path: str, module: str, node: ast.ClassDef
) -> None:
    qual = f"{module}.{node.name}"
    bases = tuple(
        raw for raw in (_raw_dotted(b) for b in node.bases) if raw is not None
    )
    cls = ClassNode(qualname=qual, module=module, bases=bases)
    graph.classes[qual] = cls
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = _index_function(graph, path, module, stmt, cls=qual)
            cls.methods[stmt.name] = fn.qualname
            graph.method_index.setdefault(stmt.name, []).append(qual)
            graph.modules[module].roots.append(fn.qualname)
    for methods in graph.method_index.values():
        methods.sort()


def _raw_dotted(node: ast.AST) -> str | None:
    """The dotted source text of a Name/Attribute chain, unresolved."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


# ---------------------------------------------------------------------------
# function-body walker
# ---------------------------------------------------------------------------


class _FunctionWalker:
    """Collects call/reference/mutation sites for one function body."""

    def __init__(
        self, graph: CallGraph, fn: FunctionNode, module: ModuleNode
    ) -> None:
        self.graph = graph
        self.fn = fn
        self.module = module
        #: local variable name -> class qualname (light type inference)
        self.var_types: dict[str, str] = {}
        #: names bound locally (parameters, assignments, loop targets)
        self.local_names: set[str] = set()
        #: names declared ``global`` in this function
        self.global_decls: set[str] = set()

    # -- entry -------------------------------------------------------

    def walk(self) -> None:
        node = self.fn.node
        self._bind_params(node)
        self._scan_decorators(node)
        self._prescan_locals(node)
        self._walk_body(node.body, guarded=False)

    def _bind_params(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        args = node.args
        for arg in [
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *filter(None, [args.vararg, args.kwarg]),
        ]:
            self.local_names.add(arg.arg)
            cls = self._annotation_class(arg.annotation)
            if cls is not None:
                self.var_types[arg.arg] = cls
        if self.fn.cls is not None and (args.posonlyargs or args.args):
            first = (args.posonlyargs or args.args)[0].arg
            if first in ("self", "cls"):
                self.var_types[first] = self.fn.cls

    def _scan_decorators(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        for dec in node.decorator_list:
            expr = dec.func if isinstance(dec, ast.Call) else dec
            targets = self._callable_targets(expr)
            if targets:
                self.fn.calls.append(
                    CallSite(
                        targets=targets, external=None,
                        attr=None, name=_raw_dotted(expr), owner=None,
                        lineno=dec.lineno, col=dec.col_offset,
                        guarded=False, kind="decorator",
                    )
                )
            if isinstance(dec, ast.Call):
                self._visit_expr(dec, guarded=False)

    def _prescan_locals(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        """Record every locally bound name (shadow check for globals)."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(
                sub.ctx, (ast.Store, ast.Del)
            ):
                self.local_names.add(sub.id)
            elif isinstance(sub, ast.Global):
                self.global_decls.update(sub.names)
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.local_names.add(sub.name)

    # -- statement walk with guard tracking --------------------------

    def _walk_body(self, body: list[ast.stmt], guarded: bool) -> None:
        for stmt in body:
            if isinstance(stmt, ast.If):
                if _is_enabled_guard(stmt.test):
                    self._visit_expr(stmt.test, guarded)
                    self._walk_body(stmt.body, guarded=True)
                    self._walk_body(stmt.orelse, guarded)
                elif _is_negated_guard(stmt.test) and _terminates(stmt.body):
                    self._visit_expr(stmt.test, guarded)
                    self._walk_body(stmt.body, guarded)
                    self._walk_body(stmt.orelse, guarded=True)
                    guarded = True
                else:
                    self._visit_expr(stmt.test, guarded)
                    self._walk_body(stmt.body, guarded)
                    self._walk_body(stmt.orelse, guarded)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = _index_function(
                    self.graph, self.fn.path, self.fn.module, stmt,
                    cls=None, prefix=self.fn.qualname,
                )
                _walk_function(self.graph, inner, self.module)
                self.fn.calls.append(
                    CallSite(
                        targets=(inner.qualname,), external=None,
                        attr=None, name=stmt.name, owner=None,
                        lineno=stmt.lineno, col=stmt.col_offset,
                        guarded=guarded, kind="ref",
                    )
                )
                continue
            if isinstance(stmt, ast.ClassDef):
                continue  # nested classes are out of scope
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                self._visit_assign(stmt, guarded)
                continue
            compound = False
            for attr in ("body", "orelse", "finalbody"):
                block = getattr(stmt, attr, None)
                if isinstance(block, list) and block:
                    if not compound:
                        for expr_field in self._header_exprs(stmt):
                            self._visit_expr(expr_field, guarded)
                        compound = True
                    self._walk_body(block, guarded)
            if compound:
                for handler in getattr(stmt, "handlers", []):
                    self._walk_body(handler.body, guarded)
            else:
                self._visit_expr(stmt, guarded)

    @staticmethod
    def _header_exprs(stmt: ast.stmt) -> list[ast.expr]:
        exprs: list[ast.expr] = []
        for attr in ("test", "iter"):
            value = getattr(stmt, attr, None)
            if isinstance(value, ast.expr):
                exprs.append(value)
        for item in getattr(stmt, "items", []):
            exprs.append(item.context_expr)
        return exprs

    # -- assignments: type inference + global-mutation detection -----

    def _visit_assign(self, stmt: ast.stmt, guarded: bool) -> None:
        value = getattr(stmt, "value", None)
        if isinstance(value, ast.expr):
            self._visit_expr(value, guarded)
        targets: list[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        else:
            target_expr = getattr(stmt, "target", None)
            targets = [target_expr] if isinstance(target_expr, ast.expr) else []
        for target in targets:
            self._record_store(stmt, target)
            if isinstance(target, ast.Name) and isinstance(value, ast.Call):
                cls = self._constructed_class(value)
                if cls is not None:
                    self.var_types[target.id] = cls
            if isinstance(stmt, ast.AnnAssign) and isinstance(target, ast.Name):
                cls = self._annotation_class(stmt.annotation)
                if cls is not None:
                    self.var_types[target.id] = cls
            if not isinstance(target, ast.Name):
                self._visit_expr(target, guarded)

    def _record_store(self, stmt: ast.stmt, target: ast.expr) -> None:
        """Classify stores that mutate global or singleton state."""
        root = target
        through = False  # store goes *through* a subscript/attribute
        while isinstance(root, (ast.Subscript, ast.Attribute)):
            through = True
            root = root.value
        if not isinstance(root, ast.Name):
            return
        name = root.id
        # singleton state attribute: OBS.enabled = ...
        if isinstance(target, ast.Attribute):
            owner = self.module.imports.resolve(target.value)
            if owner is not None:
                self.fn.mutations.append(
                    MutationSite(
                        target=f"{owner}.{target.attr}", kind="attr",
                        lineno=stmt.lineno, col=stmt.col_offset,
                    )
                )
                return
        if name in self.global_decls:
            self.fn.mutations.append(
                MutationSite(
                    target=f"{self.fn.module}.{name}", kind="global",
                    lineno=stmt.lineno, col=stmt.col_offset,
                )
            )
            return
        if through and name not in self.local_names:
            if name in self.module.globals:
                self.fn.mutations.append(
                    MutationSite(
                        target=f"{self.fn.module}.{name}", kind="store",
                        lineno=stmt.lineno, col=stmt.col_offset,
                    )
                )
            else:
                imported = self.module.imports.aliases.get(name)
                if imported is not None:
                    self.fn.mutations.append(
                        MutationSite(
                            target=imported, kind="store",
                            lineno=stmt.lineno, col=stmt.col_offset,
                        )
                    )

    # -- expressions: call + reference collection --------------------

    def _visit_expr(self, root: ast.AST, guarded: bool) -> None:
        for node in ast.walk(root):
            if isinstance(node, ast.Call):
                self._record_call(node, guarded)
            elif isinstance(node, (ast.Lambda,)):
                continue

    def _record_call(self, node: ast.Call, guarded: bool) -> None:
        func = node.func
        external = self.module.imports.resolve(func)
        targets: tuple[str, ...] = ()
        attr: str | None = None
        name: str | None = None
        owner: str | None = None

        if isinstance(func, ast.Name):
            name = func.id
            targets = self._callable_targets(func)
        elif isinstance(func, ast.Attribute):
            attr = func.attr
            targets, owner = self._method_targets(func)

        has_args = bool(node.args or node.keywords)
        self.fn.calls.append(
            CallSite(
                targets=targets, external=external, attr=attr, name=name,
                owner=owner, lineno=node.lineno, col=node.col_offset,
                guarded=guarded, kind="call", has_args=has_args,
            )
        )
        # reference edges: function names passed as arguments
        via_name = attr or name or (external.split(".")[-1] if external else None)
        for arg in node.args:
            self._record_ref(arg, via_name, guarded)
        for kw in node.keywords:
            self._record_ref(kw.value, kw.arg or via_name, guarded)

    def _record_ref(
        self, expr: ast.expr, via: str | None, guarded: bool
    ) -> None:
        if not isinstance(expr, (ast.Name, ast.Attribute)):
            return
        targets = self._callable_targets(expr)
        if targets:
            self.fn.calls.append(
                CallSite(
                    targets=targets, external=None, attr=None,
                    name=_raw_dotted(expr), owner=None,
                    lineno=expr.lineno, col=expr.col_offset,
                    guarded=guarded, kind="ref", via=via,
                )
            )

    # -- resolution helpers ------------------------------------------

    def _callable_targets(self, expr: ast.expr) -> tuple[str, ...]:
        """Function qualnames an expression may refer to (refs + calls)."""
        if isinstance(expr, ast.Name):
            if expr.id in self.local_names and expr.id not in self.var_types:
                # a local binding; nested defs were given ref edges already
                local = f"{self.fn.qualname}.{expr.id}"
                return (local,) if local in self.graph.functions else ()
            resolved = self.graph._resolve_raw(self.module, expr.id, set())
            if resolved is not None and resolved[0] == "func":
                return (resolved[1],)
            if resolved is not None and resolved[0] == "class":
                init = self.graph._method_of(resolved[1], "__init__")
                return (init[1],) if init is not None else ()
            return ()
        if isinstance(expr, ast.Attribute):
            targets, _ = self._method_targets(expr)
            return targets
        return ()

    def _method_targets(
        self, func: ast.Attribute
    ) -> tuple[tuple[str, ...], str | None]:
        """Resolve ``recv.method`` to function targets plus owner qual."""
        method = func.attr
        recv = func.value
        # typed local receiver (self, annotated param, constructor assign)
        if isinstance(recv, ast.Name) and recv.id in self.var_types:
            found = self.graph._method_of(self.var_types[recv.id], method)
            owner = self.var_types[recv.id]
            if found is not None:
                return (found[1],), owner
            return (), owner
        # import-map resolvable owner (module function / singleton / class)
        qual = self.module.imports.resolve(func)
        if qual is not None:
            resolved = self.graph.resolve(qual)
            owner = self.module.imports.resolve(recv)
            if resolved is not None and resolved[0] == "func":
                return (resolved[1],), owner
            if resolved is not None:
                return (), owner
        owner = (
            self.module.imports.resolve(recv)
            if isinstance(recv, (ast.Name, ast.Attribute))
            else None
        )
        # local dotted chain: Class.method inside this module
        raw = _raw_dotted(func)
        if raw is not None:
            resolved = self.graph._resolve_raw(self.module, raw, set())
            if resolved is not None and resolved[0] == "func":
                return (resolved[1],), owner
        # class-hierarchy fallback over the method-name index
        return self.graph.cha_targets(method), owner

    def _annotation_class(self, annotation: ast.expr | None) -> str | None:
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        raw = _raw_dotted(annotation)
        if raw is None:
            return None
        resolved = self.graph._resolve_raw(self.module, raw, set())
        if resolved is not None and resolved[0] == "class":
            return resolved[1]
        return None

    def _constructed_class(self, call: ast.Call) -> str | None:
        raw = _raw_dotted(call.func)
        if raw is None:
            return None
        resolved = self.graph._resolve_raw(self.module, raw, set())
        if resolved is not None and resolved[0] == "class":
            return resolved[1]
        return None


def _is_enabled_guard(test: ast.AST) -> bool:
    """Does this test read ``OBS.enabled`` / ``FREC.enabled`` positively?"""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return False
    for sub in ast.walk(test):
        if (
            isinstance(sub, ast.Attribute)
            and sub.attr == "enabled"
            and isinstance(sub.value, ast.Name)
            and sub.value.id in GUARD_SINGLETONS
        ):
            return True
    return False


def _is_negated_guard(test: ast.AST) -> bool:
    return (
        isinstance(test, ast.UnaryOp)
        and isinstance(test.op, ast.Not)
        and _is_enabled_guard(test.operand)
    )


def _terminates(block: list[ast.stmt]) -> bool:
    return bool(block) and isinstance(
        block[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


def _walk_module(
    graph: CallGraph, path: str, module: str, tree: ast.Module
) -> None:
    mod = graph.modules[module]
    for qual in list(mod.roots):
        _walk_function(graph, graph.functions[qual], mod)


def _walk_function(
    graph: CallGraph, fn: FunctionNode, module: ModuleNode
) -> None:
    _FunctionWalker(graph, fn, module).walk()


# ---------------------------------------------------------------------------
# SCC condensation (iterative Tarjan)
# ---------------------------------------------------------------------------


def strongly_connected_components(
    graph: dict[str, tuple[str, ...]],
) -> list[list[str]]:
    """Tarjan's SCCs, iteratively (no recursion-limit hazard).

    Components are emitted in reverse topological order — every SCC
    appears after all SCCs it has edges into — which is exactly the
    bottom-up order effect propagation needs for a one-pass fixpoint.

    >>> sccs = strongly_connected_components(
    ...     {"a": ("b",), "b": ("c",), "c": ("b",), "d": ()}
    ... )
    >>> [sorted(c) for c in sccs]
    [['b', 'c'], ['a'], ['d']]
    """
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    out: list[list[str]] = []
    counter = 0

    for root in sorted(graph):
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_i = work.pop()
            if child_i == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            children = graph.get(node, ())
            for i in range(child_i, len(children)):
                child = children[i]
                if child not in graph:
                    continue
                if child not in index:
                    work.append((node, i + 1))
                    work.append((child, 0))
                    recurse = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                out.append(sorted(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return out
