"""ALIAS001: no in-place mutation of values from shared cached getters.

:class:`~repro.field.FieldModel` memoises arrays and CSR matrices that are
*shared between every consumer* of the model (the module table in
``repro/field/model.py`` lists them), and the engines expose read-only
views (``counts``, ``benefit``).  Mutating one of these in place corrupts
every other consumer's view of the field — far from where the symptom
appears.  Dense arrays are frozen and fail fast at runtime; CSR payloads
and list-of-array groups are only frozen under ``REPRO_CHECKS=1``, so the
lint catches the pattern statically in all configurations.

The rule tracks, per scope and in statement order, names bound from a
cached-getter expression (``counts = engine.counts``;
``adj = fm.adjacency(rs)``; ``for grp in fm.points_by_cell(...)``) and
flags in-place operations on them — augmented assignment, subscript
assignment, mutator method calls (``.sort()``, ``.fill()``...), being
passed as a NumPy ``out=`` target, or un-freezing via
``.flags.writeable``.  Rebinding a name to a defensive copy
(``counts = counts.copy()``) releases it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.lint.framework import FileContext, Finding, Rule

__all__ = ["NoInPlaceOnCachedViews"]

#: Properties returning shared/read-only arrays or matrices.
_CACHED_PROPERTIES = frozenset(
    {
        "points",
        "counts",
        "benefit",
        "field_points",
        "k_per_point",
        "coverage_adjacency",
    }
)

#: FieldModel methods returning memoised (shared) artifacts.
_CACHED_METHODS = frozenset(
    {
        "adjacency",
        "cell_of",
        "points_by_cell",
        "same_cell_adjacency",
        "probe_grid",
        "neighbor_index",
    }
)

#: ndarray methods that mutate in place.
_MUTATORS = frozenset({"sort", "fill", "resize", "partition", "put", "setflags"})

#: Methods whose return value is an independent copy (rebinding releases).
_COPYING = frozenset(
    {"copy", "astype", "tolist", "toarray", "todense", "tocoo", "tocsc"}
)


def _is_cached_expr(node: ast.AST) -> bool:
    """Does this expression read from a shared cached getter?"""
    if isinstance(node, ast.Attribute) and node.attr in _CACHED_PROPERTIES:
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _CACHED_METHODS
    ):
        return True
    return False


def _base_name(node: ast.AST) -> str | None:
    """The root Name of a Subscript/Attribute chain, if any."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class NoInPlaceOnCachedViews(Rule):
    """ALIAS001: flag in-place ops on names bound from cached getters."""

    code = "ALIAS001"
    summary = (
        "in-place mutation of a value obtained from a FieldModel/engine "
        "cached getter; shared caches must be treated as immutable"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._scan(ctx, ctx.tree.body, {})

    # ------------------------------------------------------------------
    _COMPOUND = (
        ast.If,
        ast.While,
        ast.For,
        ast.AsyncFor,
        ast.With,
        ast.AsyncWith,
        ast.Try,
    )

    def _scan(
        self, ctx: FileContext, body: list[ast.stmt], tracked: dict[str, bool]
    ) -> Iterator[Finding]:
        """Walk a statement list in order, maintaining the tracked-name set."""
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                # fresh scope seeded with the enclosing bindings (closures)
                yield from self._scan(ctx, stmt.body, dict(tracked))
                continue
            if isinstance(stmt, self._COMPOUND):
                for expr in self._header_exprs(stmt):
                    yield from self._violations(ctx, expr, tracked)
                self._update_bindings(stmt, tracked)
                for child_body in self._nested_bodies(stmt):
                    yield from self._scan(ctx, child_body, tracked)
                continue
            yield from self._violations(ctx, stmt, tracked)
            self._update_bindings(stmt, tracked)

    @staticmethod
    def _header_exprs(stmt: ast.stmt) -> list[ast.expr]:
        """The expressions a compound statement evaluates in its header."""
        exprs: list[ast.expr] = []
        for attr in ("test", "iter"):
            value = getattr(stmt, attr, None)
            if value is not None:
                exprs.append(value)
        for item in getattr(stmt, "items", []):
            exprs.append(item.context_expr)
        return exprs

    @staticmethod
    def _nested_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
        bodies = []
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(stmt, attr, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                bodies.append(block)
        for handler in getattr(stmt, "handlers", []):
            bodies.append(handler.body)
        return bodies

    def _update_bindings(self, stmt: ast.stmt, tracked: dict[str, bool]) -> None:
        """Track/untrack names bound by this statement."""
        if isinstance(stmt, ast.Assign):
            value, targets = stmt.value, stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value, targets = stmt.value, [stmt.target]
        elif isinstance(stmt, ast.For):
            # ``for grp in fm.points_by_cell(...):`` -- the elements of the
            # cached group list are themselves shared arrays
            if isinstance(stmt.target, ast.Name) and (
                _is_cached_expr(stmt.iter)
                or (
                    isinstance(stmt.iter, ast.Name)
                    and tracked.get(stmt.iter.id)
                )
            ):
                tracked[stmt.target.id] = True
            return
        else:
            return
        is_cached = _is_cached_expr(value)
        if (
            not is_cached
            and isinstance(value, ast.Name)
            and tracked.get(value.id)
        ):
            is_cached = True  # alias of a tracked name
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in _COPYING
        ):
            is_cached = False  # defensive copy releases the binding
        for target in targets:
            if isinstance(target, ast.Name):
                tracked[target.id] = is_cached

    def _is_protected(self, node: ast.AST, tracked: dict[str, bool]) -> bool:
        """Is this expression a cached getter read or (rooted at) a tracked
        alias?  ``adj.data[0]`` mutates the same buffer as ``adj``."""
        if _is_cached_expr(node):
            return True
        if isinstance(node, ast.Name):
            return bool(tracked.get(node.id))
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            base = _base_name(node)
            return base is not None and bool(tracked.get(base))
        return False

    def _violations(
        self, ctx: FileContext, root: ast.AST, tracked: dict[str, bool]
    ) -> Iterator[Finding]:
        for node in ast.walk(root):
            if isinstance(node, ast.AugAssign):
                target = node.target
                base = (
                    target.value
                    if isinstance(target, ast.Subscript)
                    else target
                )
                if self._is_protected(base, tracked):
                    yield ctx.finding(
                        self.code,
                        node,
                        "augmented assignment mutates a shared cached "
                        "value in place; copy it first",
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and self._is_protected(
                        target.value, tracked
                    ):
                        yield ctx.finding(
                            self.code,
                            node,
                            "subscript assignment writes into a shared "
                            "cached array; copy it first",
                        )
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "writeable"
                        and not (
                            isinstance(node.value, ast.Constant)
                            and node.value.value is False
                        )
                        and _base_name(target) is not None
                        and tracked.get(_base_name(target))
                    ):
                        yield ctx.finding(
                            self.code,
                            node,
                            "re-enabling writeable on a frozen cached "
                            "array defeats the sharing contract",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS
                    and self._is_protected(func.value, tracked)
                ):
                    yield ctx.finding(
                        self.code,
                        node,
                        f"`.{func.attr}()` mutates a shared cached value "
                        "in place; copy it first",
                    )
                for kw in node.keywords:
                    if kw.arg == "out" and self._is_protected(kw.value, tracked):
                        yield ctx.finding(
                            self.code,
                            node,
                            "`out=` writes into a shared cached array; "
                            "allocate a fresh output instead",
                        )
