"""Determinism rules: DET001 (legacy global RNG), DET002 (wall clock/entropy).

The paper's figures are averages over seeded trials; every run must be
bit-reproducible from its seed.  Two things silently break that:

* the *legacy global RNG* (``np.random.rand``/``np.random.seed``, stdlib
  ``random.random`` & co.) — hidden process state that any import can
  perturb.  Only explicit ``np.random.Generator`` objects, created with
  ``np.random.default_rng(seed)`` and threaded through call sites, are
  allowed (DET001);
* *wall-clock and entropy reads* in library code — ``time.time``,
  ``perf_counter``, ``uuid``, ``os.urandom`` — which make behaviour (or
  recorded artifacts) differ between identical runs.  Only ``repro.obs``
  may read the clock, because instrumentation never changes results
  (DET002).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.lint.framework import FileContext, Finding, Rule

__all__ = ["NoLegacyGlobalRng", "NoWallClockInLibrary"]

#: Constructors of the modern, explicitly-seeded numpy RNG machinery.
_NUMPY_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "MT19937",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
    }
)

#: Stdlib ``random`` attributes that are explicit instances, not global state.
_STDLIB_RANDOM_ALLOWED = frozenset({"Random"})

#: Qualified callables that read the wall clock or OS entropy.
_WALL_CLOCK_OR_ENTROPY = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid3",
        "uuid.uuid4",
        "uuid.uuid5",
        "uuid.getnode",
        "random.SystemRandom",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class NoLegacyGlobalRng(Rule):
    """DET001: no legacy global-RNG calls anywhere in the tree."""

    code = "DET001"
    summary = (
        "legacy global RNG (np.random.<fn> / random.<fn>) is forbidden; "
        "thread a seeded np.random.Generator through call sites"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.imports.resolve(node.func)
            if qual is None:
                continue
            if qual.startswith("numpy.random."):
                tail = qual.split(".")[-1]
                if tail not in _NUMPY_RANDOM_ALLOWED:
                    yield ctx.finding(
                        self.code,
                        node,
                        f"call to legacy global-RNG `{qual}`; use an "
                        "explicit np.random.Generator from "
                        "np.random.default_rng(seed) instead",
                    )
            elif qual.startswith("random."):
                tail = qual.split(".")[1]
                if (
                    tail not in _STDLIB_RANDOM_ALLOWED
                    and tail != "SystemRandom"  # DET002's finding, not ours
                ):
                    yield ctx.finding(
                        self.code,
                        node,
                        f"call to stdlib global-RNG `{qual}`; use an "
                        "explicit, seeded generator object instead",
                    )


class NoWallClockInLibrary(Rule):
    """DET002: no wall-clock/entropy reads in library code outside repro.obs."""

    code = "DET002"
    summary = (
        "wall-clock/entropy reads (time.*, uuid.*, os.urandom) are "
        "forbidden in library code; only repro.obs may read the clock"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_library or ctx.in_package("repro.obs"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.imports.resolve(node.func)
            if qual is None:
                continue
            if qual in _WALL_CLOCK_OR_ENTROPY or qual.startswith("secrets."):
                yield ctx.finding(
                    self.code,
                    node,
                    f"wall-clock/entropy call `{qual}` in library module "
                    f"`{ctx.module}`; runs must be bit-reproducible from "
                    "their seed (only repro.obs may read the clock)",
                )
