"""API001: no exact float equality on coordinates or benefits.

Positions, distances and benefit values are floats produced by chains of
floating-point arithmetic (Halton radical inverses, squared distances,
sparse mat-vecs).  ``==``/``!=`` on them is order-of-evaluation dependent
— exactly the kind of silent nondeterminism a backend swap or a
vectorisation change turns into a different placement.  Compare with a
tolerance (``np.isclose``/``math.isclose``), or restructure (e.g. the
greedy loop uses ``benefit <= 0.0`` against an integer-valued lower
bound).

The rule is name-driven: a comparison is flagged when either operand's
terminal identifier names a coordinate/benefit quantity (contains
``benefit`` or ``coord``, or is ``pos``/``position``/``distance``/...),
unless the other operand is a string/None/bool literal (mode switches
like ``benefit_mode == "binary"`` are fine) or the name is itself a
mode/label (``*_mode``, ``*_name``...).  Float literals compared against
such a name are flagged too.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.lint.framework import FileContext, Finding, Rule

__all__ = ["NoFloatEqualityOnCoordinates"]

_FLOATY_EXACT = frozenset(
    {
        "pos",
        "position",
        "positions",
        "distance",
        "distances",
        "dist",
        "dists",
        "benefit",
        "benefits",
        "coord",
        "coords",
        "coordinates",
    }
)

#: Suffixes marking discrete labels, not float quantities.
_LABEL_SUFFIXES = ("mode", "name", "kind", "label", "key", "id", "ids", "method")


def _terminal_name(node: ast.AST) -> str | None:
    """Identifier a reader would use to name this expression's value."""
    if isinstance(node, ast.Subscript):
        return _terminal_name(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_floaty_name(name: str | None) -> bool:
    if name is None:
        return False
    lowered = name.lower().lstrip("_")
    if any(
        lowered == suffix or lowered.endswith("_" + suffix)
        for suffix in _LABEL_SUFFIXES
    ):
        return False
    if lowered in _FLOATY_EXACT:
        return True
    return "benefit" in lowered or "coord" in lowered


def _is_discrete_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(
        node.value, (str, bool, bytes, type(None))
    )


def _is_tolerant_call(node: ast.AST) -> bool:
    """A sanctioned tolerant comparator: pytest.approx / np.isclose etc."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    return name in {"approx", "isclose", "allclose"}


class NoFloatEqualityOnCoordinates(Rule):
    """API001: flag ``==``/``!=`` between coordinate/benefit floats."""

    code = "API001"
    summary = (
        "exact float ==/!= on coordinates or benefits; use np.isclose or "
        "restructure the comparison"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(
                node.ops, operands[:-1], operands[1:], strict=True
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_discrete_literal(left) or _is_discrete_literal(right):
                    continue
                if _is_tolerant_call(left) or _is_tolerant_call(right):
                    continue
                left_name = _terminal_name(left)
                right_name = _terminal_name(right)
                if _is_floaty_name(left_name) or _is_floaty_name(right_name):
                    shown = (
                        left_name
                        if _is_floaty_name(left_name)
                        else right_name
                    )
                    yield ctx.finding(
                        self.code,
                        node,
                        f"exact float equality on `{shown}`; coordinates "
                        "and benefits come from float arithmetic — use "
                        "np.isclose or an inequality",
                    )
