"""Project-specific AST lints for the DECOR reproduction.

Run as ``python -m repro.checks.lint`` (CI does) or call
:func:`lint_paths` programmatically.  The rule catalogue, rationale and the
``# checks: ignore[CODE]`` suppression syntax are documented in
``docs/static_analysis.md``.

========  ==========================================================
code      enforces
========  ==========================================================
DET001    no legacy global-RNG calls (np.random.<fn>, random.<fn>)
DET002    no wall-clock/entropy reads in library code outside repro.obs
ALIAS001  no in-place mutation of FieldModel/engine cached values
OBS001    OBS metric/event touchpoints guarded by ``if OBS.enabled:``
OBS002    ``@profiled`` site names unique across the library
OBS003    flight-recorder touchpoints guarded by ``if FREC.enabled:``
OBS004    telemetry touchpoints (OBS.sample, record_*_health) guarded
OBS005    run-ledger recording guarded by ``if LEDGER.enabled:``
API001    no exact float ==/!= on coordinates or benefits
SUP001    every ``# checks: ignore`` suppression must match a finding
========  ==========================================================

PAR001 (worker discipline in ``repro.parallel``) moved to the
interprocedural analyzer: :mod:`repro.checks.flow` computes it from
effect summaries instead of per-file heuristics, alongside the
transitive FLOW001–FLOW003/DET003 rules.

Two rule sets are registered: :data:`ALL_RULES` (library and test code)
and :data:`RELAXED_RULES` (``benchmarks/`` and ``tools/`` — scripts that
legitimately read ``time.perf_counter`` and print, but must still avoid
legacy RNG and cached-view mutation).
"""

from repro.checks.lint.framework import (
    FileContext,
    Finding,
    ImportMap,
    Rule,
    SUPPRESSION_RULE,
    iter_python_files,
    lint_paths,
    parse_suppressions,
)
from repro.checks.lint.rules_alias import NoInPlaceOnCachedViews
from repro.checks.lint.rules_api import NoFloatEqualityOnCoordinates
from repro.checks.lint.rules_det import NoLegacyGlobalRng, NoWallClockInLibrary
from repro.checks.lint.rules_obs import (
    FlightRecorderGuarded,
    LedgerTouchpointsGuarded,
    ObsTouchpointsGuarded,
    ProfiledSitesUnique,
    TelemetryTouchpointsGuarded,
)

__all__ = [
    "ALL_RULES",
    "RELAXED_RULES",
    "Finding",
    "FileContext",
    "ImportMap",
    "Rule",
    "SUPPRESSION_RULE",
    "iter_python_files",
    "lint_paths",
    "parse_suppressions",
    "NoLegacyGlobalRng",
    "NoWallClockInLibrary",
    "NoInPlaceOnCachedViews",
    "ObsTouchpointsGuarded",
    "ProfiledSitesUnique",
    "FlightRecorderGuarded",
    "TelemetryTouchpointsGuarded",
    "LedgerTouchpointsGuarded",
    "NoFloatEqualityOnCoordinates",
]

#: The registered rule set, in reporting order.
ALL_RULES: tuple[type[Rule], ...] = (
    NoLegacyGlobalRng,
    NoWallClockInLibrary,
    NoInPlaceOnCachedViews,
    ObsTouchpointsGuarded,
    ProfiledSitesUnique,
    FlightRecorderGuarded,
    TelemetryTouchpointsGuarded,
    LedgerTouchpointsGuarded,
    NoFloatEqualityOnCoordinates,
)

#: Subset applied to ``benchmarks/`` and ``tools/``: determinism of the
#: RNG discipline and aliasing safety still bind there, but wall-clock
#: reads and unguarded prints are the whole point of a benchmark script.
RELAXED_RULES: tuple[type[Rule], ...] = (
    NoLegacyGlobalRng,
    NoInPlaceOnCachedViews,
)
