"""Project-specific AST lints for the DECOR reproduction.

Run as ``python -m repro.checks.lint src/ tests/`` (CI does) or call
:func:`lint_paths` programmatically.  The rule catalogue, rationale and the
``# checks: ignore[CODE]`` suppression syntax are documented in
``docs/static_analysis.md``.

========  ==========================================================
code      enforces
========  ==========================================================
DET001    no legacy global-RNG calls (np.random.<fn>, random.<fn>)
DET002    no wall-clock/entropy reads in library code outside repro.obs
ALIAS001  no in-place mutation of FieldModel/engine cached values
OBS001    OBS metric/event touchpoints guarded by ``if OBS.enabled:``
OBS002    ``@profiled`` site names unique across the library
OBS003    flight-recorder touchpoints guarded by ``if FREC.enabled:``
OBS004    telemetry touchpoints (OBS.sample, record_*_health) guarded
API001    no exact float ==/!= on coordinates or benefits
PAR001    repro.parallel: no un-seeded RNG, no global OBS mutation
SUP001    every ``# checks: ignore`` suppression must match a finding
========  ==========================================================
"""

from repro.checks.lint.framework import (
    FileContext,
    Finding,
    ImportMap,
    Rule,
    SUPPRESSION_RULE,
    iter_python_files,
    lint_paths,
    parse_suppressions,
)
from repro.checks.lint.rules_alias import NoInPlaceOnCachedViews
from repro.checks.lint.rules_api import NoFloatEqualityOnCoordinates
from repro.checks.lint.rules_det import NoLegacyGlobalRng, NoWallClockInLibrary
from repro.checks.lint.rules_obs import (
    FlightRecorderGuarded,
    ObsTouchpointsGuarded,
    ProfiledSitesUnique,
    TelemetryTouchpointsGuarded,
)
from repro.checks.lint.rules_par import ParallelWorkerDiscipline

__all__ = [
    "ALL_RULES",
    "Finding",
    "FileContext",
    "ImportMap",
    "Rule",
    "SUPPRESSION_RULE",
    "iter_python_files",
    "lint_paths",
    "parse_suppressions",
    "NoLegacyGlobalRng",
    "NoWallClockInLibrary",
    "NoInPlaceOnCachedViews",
    "ObsTouchpointsGuarded",
    "ProfiledSitesUnique",
    "FlightRecorderGuarded",
    "TelemetryTouchpointsGuarded",
    "NoFloatEqualityOnCoordinates",
    "ParallelWorkerDiscipline",
]

#: The registered rule set, in reporting order.
ALL_RULES: tuple[type[Rule], ...] = (
    NoLegacyGlobalRng,
    NoWallClockInLibrary,
    NoInPlaceOnCachedViews,
    ObsTouchpointsGuarded,
    ProfiledSitesUnique,
    FlightRecorderGuarded,
    TelemetryTouchpointsGuarded,
    NoFloatEqualityOnCoordinates,
    ParallelWorkerDiscipline,
)
