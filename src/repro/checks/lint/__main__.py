"""CLI entry point: ``python -m repro.checks.lint [paths...]``.

Exit status 0 when the tree is clean, 1 when any finding survives
suppression filtering (CI fails the build on that), 2 for usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.checks.lint import ALL_RULES, lint_paths


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks.lint",
        description="Project-specific AST lints (see docs/static_analysis.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.summary}")
        print("SUP001  unused `# checks: ignore[...]` suppressions are errors")
        return 0

    findings = lint_paths(args.paths)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
