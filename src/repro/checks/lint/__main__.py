"""CLI entry point: ``python -m repro.checks.lint [paths...]``.

Paths under ``benchmarks/`` or ``tools/`` are linted with the relaxed
rule subset (:data:`~repro.checks.lint.RELAXED_RULES` — DET001/ALIAS001
plus the always-on SUP001 suppression hygiene); everything else gets the
full registered set.  Exit status 0 when the tree is clean, 1 when any
finding survives suppression filtering (CI fails the build on that),
2 for usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.checks.lint import ALL_RULES, RELAXED_RULES, lint_paths

#: Top-level directories linted with the relaxed subset.
RELAXED_DIRS = frozenset({"benchmarks", "tools"})

#: What ``python -m repro.checks.lint`` with no arguments covers.
DEFAULT_PATHS = ("src", "tests", "benchmarks", "tools")


def split_paths(paths: Sequence[str]) -> tuple[list[str], list[str]]:
    """(strict, relaxed) partition of the requested paths.

    >>> split_paths(["src", "tools", "benchmarks/x.py"])
    (['src'], ['tools', 'benchmarks/x.py'])
    """
    strict: list[str] = []
    relaxed: list[str] = []
    for raw in paths:
        parts = Path(raw).parts
        if parts and parts[0] in RELAXED_DIRS:
            relaxed.append(raw)
        else:
            strict.append(raw)
    return strict, relaxed


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks.lint",
        description="Project-specific AST lints (see docs/static_analysis.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=(
            "files or directories to lint (default: "
            f"{' '.join(DEFAULT_PATHS)}; benchmarks/ and tools/ get the "
            "relaxed rule subset)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        relaxed_codes = {rule.code for rule in RELAXED_RULES}
        for rule in ALL_RULES:
            scope = "" if rule.code not in relaxed_codes else "  [relaxed set]"
            print(f"{rule.code}  {rule.summary}{scope}")
        print("SUP001  unused `# checks: ignore[...]` suppressions are errors")
        return 0

    strict, relaxed = split_paths(args.paths)
    findings = []
    if strict:
        findings.extend(lint_paths(strict))
    if relaxed:
        findings.extend(lint_paths(relaxed, RELAXED_RULES))
    findings.sort()
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
