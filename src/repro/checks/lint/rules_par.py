"""Parallel-worker discipline rule: PAR001.

:mod:`repro.parallel` ships work to worker processes and merges the
results back deterministically.  Two classes of code silently break that
contract from inside the module itself:

* **un-seeded RNG construction** — ``np.random.default_rng()`` or
  ``random.Random()`` with no arguments draws OS entropy, so two workers
  (or two runs) diverge.  DET001 already bans the legacy *global* RNG
  everywhere; PAR001 additionally requires that the *explicit* generators
  DET001 steers code toward are constructed with a seed when they appear
  in ``repro.parallel``;
* **global OBS mutation** — calling ``OBS.enable``/``disable``/``reset``
  (or assigning ``OBS.enabled``/``OBS.tracer``/``OBS.metrics``) from the
  parallel layer would race the parent's runtime state against worker
  capture.  The only sanctioned seam is :mod:`repro.obs.bridge`'s
  ``capture_worker_obs``/``merge_worker_obs`` pair, which lives in the
  package that owns the singleton.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.lint.framework import FileContext, Finding, Rule

__all__ = ["ParallelWorkerDiscipline"]

#: RNG constructors that must receive an explicit seed in repro.parallel.
_SEEDED_CONSTRUCTORS = frozenset({"numpy.random.default_rng", "random.Random"})

#: Qualified names the global observability singletons resolve to via the
#: import map (the OBS runtime and the FREC flight recorder share the
#: capture/merge seam and the same mutation discipline).
_OBS_SINGLETONS = frozenset(
    {
        "repro.obs.OBS",
        "repro.obs.runtime.OBS",
        "repro.obs.FREC",
        "repro.obs.flightrec.FREC",
    }
)

#: OBS runtime methods that mutate global observability state.
_OBS_MUTATORS = frozenset({"enable", "disable", "reset"})

#: OBS runtime attributes whose rebinding swaps global state.
_OBS_STATE_ATTRS = frozenset({"enabled", "tracer", "metrics"})


class ParallelWorkerDiscipline(Rule):
    """PAR001: no un-seeded RNG or global OBS mutation in repro.parallel."""

    code = "PAR001"
    summary = (
        "repro.parallel must not construct un-seeded RNGs or mutate the "
        "global OBS runtime; seed every generator and go through the "
        "repro.obs.bridge capture/merge seam"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("repro.parallel"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    yield from self._check_target(ctx, node, target)
            elif isinstance(node, ast.AnnAssign):
                yield from self._check_target(ctx, node, node.target)

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        qual = ctx.imports.resolve(node.func)
        if qual is None:
            return
        if qual in _SEEDED_CONSTRUCTORS and not node.args and not node.keywords:
            yield ctx.finding(
                self.code,
                node,
                f"un-seeded `{qual}()` in repro.parallel; workers must "
                "derive all randomness from their cell's seed or two "
                "runs of the same sweep will disagree",
            )
            return
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _OBS_MUTATORS
        ):
            owner = ctx.imports.resolve(node.func.value)
            if owner in _OBS_SINGLETONS:
                yield ctx.finding(
                    self.code,
                    node,
                    f"`OBS.{node.func.attr}(...)` in repro.parallel; "
                    "global OBS state may only be switched through the "
                    "repro.obs.bridge capture/merge seam",
                )

    def _check_target(
        self, ctx: FileContext, stmt: ast.stmt, target: ast.expr
    ) -> Iterator[Finding]:
        if (
            isinstance(target, ast.Attribute)
            and target.attr in _OBS_STATE_ATTRS
        ):
            owner = ctx.imports.resolve(target.value)
            if owner in _OBS_SINGLETONS:
                yield ctx.finding(
                    self.code,
                    stmt,
                    f"assignment to `OBS.{target.attr}` in repro.parallel; "
                    "global OBS state may only be switched through the "
                    "repro.obs.bridge capture/merge seam",
                )
