"""Rule framework for the project-specific AST linter.

The linter enforces invariants generic tools cannot know about — DECOR's
determinism contract, the FieldModel shared-cache aliasing rules, the
``OBS`` guard discipline — as small :class:`Rule` classes over the stdlib
``ast``.  The framework provides:

* :class:`Finding` — one diagnostic, rendered ``path:line:col: CODE msg``;
* :class:`FileContext` — parsed tree, resolved module name, and an
  :class:`ImportMap` that turns local names back into qualified dotted
  paths (``np.random.rand`` -> ``numpy.random.rand``), so rules match
  *what is called*, not what it happens to be spelled as;
* suppression handling — ``# checks: ignore[CODE]`` on the offending line
  silences that rule there, and every suppression must earn its keep: one
  that matches no finding is itself an error (``SUP001``), so stale
  ignores cannot accumulate;
* :func:`lint_paths` — the runner (file discovery, per-file rule pass,
  cross-file ``finish`` pass, suppression filtering).

Adding a rule: subclass :class:`Rule`, set ``code``/``summary``, implement
``check`` (yield findings for one file) and optionally ``finish`` (yield
findings needing cross-file state), then register it in
``repro.checks.lint.ALL_RULES``.  See ``docs/static_analysis.md``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "ImportMap",
    "FileContext",
    "Rule",
    "SUPPRESSION_RULE",
    "PARSE_RULE",
    "parse_suppressions",
    "iter_python_files",
    "lint_paths",
]

#: Pseudo-rule code for unused/unknown suppressions.
SUPPRESSION_RULE = "SUP001"
#: Pseudo-rule code for files the parser rejects.
PARSE_RULE = "PARSE"

_SUPPRESS_RE = re.compile(r"#\s*checks:\s*ignore\[([A-Za-z0-9_\s,]*)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class ImportMap:
    """Local-name -> qualified-dotted-path resolution for one module.

    >>> tree = ast.parse(
    ...     "import numpy as np\\nfrom time import perf_counter as pc\\n"
    ... )
    >>> m = ImportMap.of(tree)
    >>> m.resolve(ast.parse("np.random.rand", mode="eval").body)
    'numpy.random.rand'
    >>> m.resolve(ast.parse("pc", mode="eval").body)
    'time.perf_counter'
    >>> m.resolve(ast.parse("local.thing", mode="eval").body) is None
    True
    """

    def __init__(self, aliases: dict[str, str]) -> None:
        self._aliases = aliases

    @property
    def aliases(self) -> dict[str, str]:
        """Local name -> qualified dotted path, as imported by this module.

        The flow analyzer (:mod:`repro.checks.flow`) walks these maps to
        chase re-export chains (``repro.obs.OBS`` ->
        ``repro.obs.runtime.OBS``) across module boundaries.
        """
        return dict(self._aliases)

    @classmethod
    def of(cls, tree: ast.AST) -> "ImportMap":
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    aliases[local] = f"{node.module}.{alias.name}"
        return cls(aliases)

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted qualified name of a Name/Attribute chain, if importable."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self._aliases.get(node.id)
        if base is None:
            return None
        return ".".join([base, *reversed(parts)]) if parts else base


class FileContext:
    """What every rule gets handed for one file."""

    def __init__(
        self, path: str, source: str, tree: ast.Module, module: str | None
    ) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        #: Dotted module name when the file belongs to the ``repro``
        #: package tree (resolved from a ``src/`` path segment), else None.
        self.module = module
        self.imports = ImportMap.of(tree)

    @property
    def in_library(self) -> bool:
        """True for modules inside the installed ``repro`` package."""
        return self.module is not None and (
            self.module == "repro" or self.module.startswith("repro.")
        )

    def in_package(self, package: str) -> bool:
        return self.module is not None and (
            self.module == package or self.module.startswith(package + ".")
        )

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


class Rule:
    """Base class for lint rules; see the module docstring for the recipe."""

    code: str = "RULE000"
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        return iter(())

    def finish(self) -> Iterator[Finding]:
        """Yield findings that needed state from every checked file."""
        return iter(())


def module_name_for(path: Path) -> str | None:
    """Dotted module name for files under a ``src/`` tree, else None.

    >>> module_name_for(Path("src/repro/field/model.py"))
    'repro.field.model'
    >>> module_name_for(Path("src/repro/checks/__init__.py"))
    'repro.checks'
    >>> module_name_for(Path("tests/test_field_model.py")) is None
    True
    """
    parts = path.parts
    if "src" not in parts:
        return None
    rel = parts[parts.index("src") + 1 :]
    if not rel or not rel[-1].endswith(".py"):
        return None
    rel = rel[:-1] + (rel[-1][: -len(".py")],)
    if rel[-1] == "__init__":
        rel = rel[:-1]
    return ".".join(rel) if rel else None


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule codes suppressed by ``# checks: ignore[...]``.

    Only genuine comment tokens count — the marker appearing inside a
    string literal (a lint fixture, a docstring example) is inert, so test
    files full of fixture snippets do not accumulate phantom suppressions.

    >>> sup = parse_suppressions("x = 1  # checks: ignore[DET001, API001]\\n")
    >>> sorted(sup[1])
    ['API001', 'DET001']
    >>> parse_suppressions('s = "# checks: ignore[DET001]"\\n')
    {}
    """
    out: dict[int, set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenizeError, IndentationError):  # pragma: no cover
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match:
            codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
            out[tok.start[0]] = codes
    return out


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in path.rglob("*.py"):
                if not any(
                    part.startswith(".") or part == "__pycache__"
                    for part in sub.parts
                ):
                    out.add(sub)
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def _apply_suppressions(
    findings: list[Finding], suppressions: dict[str, dict[int, set[str]]]
) -> list[Finding]:
    """Filter suppressed findings; flag unused or unknown suppressions."""
    used: set[tuple[str, int, str]] = set()
    kept: list[Finding] = []
    for f in findings:
        codes = suppressions.get(f.path, {}).get(f.line, set())
        if f.rule in codes and f.rule != SUPPRESSION_RULE:
            used.add((f.path, f.line, f.rule))
        else:
            kept.append(f)
    for path, lines in suppressions.items():
        for line, codes in lines.items():
            for code in sorted(codes):
                if (path, line, code) not in used:
                    kept.append(
                        Finding(
                            path=path,
                            line=line,
                            col=1,
                            rule=SUPPRESSION_RULE,
                            message=(
                                f"suppression of {code} matched no {code} "
                                "finding on this line; remove the stale "
                                "`# checks: ignore` (unused suppressions are "
                                "errors so ignores cannot rot)"
                            ),
                        )
                    )
    return sorted(kept)


def lint_paths(
    paths: Iterable[str | Path], rules: Sequence[type[Rule]] | None = None
) -> list[Finding]:
    """Run ``rules`` (default: the registered set) over ``paths``.

    Returns the surviving findings sorted by location; an empty list means
    the tree is clean.
    """
    if rules is None:
        from repro.checks.lint import ALL_RULES

        rules = ALL_RULES
    rule_objs = [rule() for rule in rules]
    findings: list[Finding] = []
    suppressions: dict[str, dict[int, set[str]]] = {}
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule=PARSE_RULE,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        ctx = FileContext(str(path), source, tree, module_name_for(path))
        suppressions[ctx.path] = parse_suppressions(source)
        for rule in rule_objs:
            findings.extend(rule.check(ctx))
    for rule in rule_objs:
        findings.extend(rule.finish())
    return _apply_suppressions(findings, suppressions)
