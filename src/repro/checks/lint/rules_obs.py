"""Observability discipline rules: OBS001/OBS003 (guards), OBS002 (sites).

The ``repro.obs`` layer promises that disabled instrumentation costs one
attribute check per touchpoint (the <3% CI gate in
``benchmarks/test_bench_obs_overhead.py`` depends on it).  That only holds
if hot-loop touchpoints — whose *arguments* would otherwise still be
evaluated and formatted — sit inside an enabled guard:

* OBS001 — ``OBS.event``/``OBS.counter``/``OBS.gauge``/``OBS.histogram``
  under ``if OBS.enabled:``.  ``OBS.span`` is exempt: it wraps whole
  phases as a context manager and returns a shared null span when
  disabled.
* OBS003 — the flight recorder's emitting touchpoints
  (``FREC.emit``/``emit_send``/``emit_deliver``/``set_cause``/
  ``clear_cause``/``begin_run``/``end_run``) under ``if FREC.enabled:``,
  so the disabled path never allocates a record dict.  ``FREC.run`` and
  ``FREC.session`` are exempt for the same reason ``OBS.span`` is.
* OBS004 — the telemetry touchpoints (``OBS.sample`` plus the
  ``record_*_health`` helpers from :mod:`repro.obs.health`) under
  ``if OBS.enabled:``.  The health helpers recompute domain gauges
  (holes, energy profiles) — real work, not just argument formatting —
  so an unguarded call would charge disabled runs for it.
* OBS005 — the run ledger's recording touchpoint
  (``LEDGER.record_run``) under ``if LEDGER.enabled:``: it harvests the
  whole metrics registry and digests artifact files — heavyweight work
  no disabled invocation may pay for.  ``LEDGER.stage`` is exempt for
  the same reason ``OBS.span`` is (shared null context when disabled).

``@profiled(site)`` site names feed the ``profile_seconds{site=...}``
histogram; two call sites sharing a name silently merge their timings, so
site names must be unique across the library (OBS002).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.lint.framework import FileContext, Finding, Rule

__all__ = [
    "FlightRecorderGuarded",
    "LedgerTouchpointsGuarded",
    "ObsTouchpointsGuarded",
    "ProfiledSitesUnique",
    "TelemetryTouchpointsGuarded",
]


def _mentions_enabled(node: ast.AST, singleton: str) -> bool:
    """Does this expression read ``<singleton>.enabled`` (however nested)?"""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and sub.attr == "enabled"
            and isinstance(sub.value, ast.Name)
            and sub.value.id == singleton
        ):
            return True
    return False


def _is_negated_guard(test: ast.AST, singleton: str) -> bool:
    return (
        isinstance(test, ast.UnaryOp)
        and isinstance(test.op, ast.Not)
        and _mentions_enabled(test.operand, singleton)
    )


def _terminates(block: list[ast.stmt]) -> bool:
    return bool(block) and isinstance(
        block[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


class _TouchpointsGuarded(Rule):
    """Shared guard walker: ``<singleton>.<method>`` under an enabled check.

    Subclasses pin ``singleton`` (the runtime's conventional name at call
    sites), ``guarded_methods`` and the finding ``consequence`` text.
    ``guarded_functions`` additionally matches bare-name helper calls
    (``record_coverage_health(...)``) that must sit under the same guard.
    """

    singleton = ""
    guarded_methods: frozenset[str] = frozenset()
    guarded_functions: frozenset[str] = frozenset()
    consequence = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_library or ctx.in_package("repro.obs"):
            return
        yield from self._walk_body(ctx, ctx.tree.body, guarded=False)

    def _walk_body(
        self, ctx: FileContext, body: list[ast.stmt], guarded: bool
    ) -> Iterator[Finding]:
        name = self.singleton
        for stmt in body:
            if isinstance(stmt, ast.If):
                if _mentions_enabled(stmt.test, name) and not _is_negated_guard(
                    stmt.test, name
                ):
                    yield from self._walk_body(ctx, stmt.body, guarded=True)
                    yield from self._walk_body(ctx, stmt.orelse, guarded=guarded)
                elif _is_negated_guard(stmt.test, name) and _terminates(stmt.body):
                    # ``if not X.enabled: return`` -- the rest of this
                    # block runs only when enabled
                    yield from self._walk_body(ctx, stmt.body, guarded=guarded)
                    yield from self._walk_body(ctx, stmt.orelse, guarded=True)
                    guarded = True
                else:
                    if not guarded:
                        yield from self._check_expr(ctx, stmt.test)
                    yield from self._walk_body(ctx, stmt.body, guarded)
                    yield from self._walk_body(ctx, stmt.orelse, guarded)
                continue
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                # a nested def runs later, outside the enclosing guard
                yield from self._walk_body(ctx, stmt.body, guarded=False)
                continue
            if isinstance(
                stmt,
                (ast.While, ast.For, ast.AsyncFor, ast.With, ast.AsyncWith, ast.Try),
            ):
                if not guarded:
                    for expr in self._header_exprs(stmt):
                        yield from self._check_expr(ctx, expr)
                for attr in ("body", "orelse", "finalbody"):
                    block = getattr(stmt, attr, None)
                    if block:
                        yield from self._walk_body(ctx, block, guarded)
                for handler in getattr(stmt, "handlers", []):
                    yield from self._walk_body(ctx, handler.body, guarded)
                continue
            if not guarded:
                yield from self._check_expr(ctx, stmt)

    @staticmethod
    def _header_exprs(stmt: ast.stmt) -> list[ast.expr]:
        exprs: list[ast.expr] = []
        for attr in ("test", "iter"):
            value = getattr(stmt, attr, None)
            if value is not None:
                exprs.append(value)
        for item in getattr(stmt, "items", []):
            exprs.append(item.context_expr)
        return exprs

    def _check_expr(self, ctx: FileContext, root: ast.AST) -> Iterator[Finding]:
        """Flag touchpoint calls anywhere under an unguarded node."""
        for node in ast.walk(root):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self.guarded_methods
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == self.singleton
            ):
                yield ctx.finding(
                    self.code,
                    node,
                    f"`{self.singleton}.{node.func.attr}(...)` is not inside "
                    f"an `if {self.singleton}.enabled:` guard; "
                    f"{self.consequence}",
                )
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in self.guarded_functions
            ):
                yield ctx.finding(
                    self.code,
                    node,
                    f"`{node.func.id}(...)` is not inside an "
                    f"`if {self.singleton}.enabled:` guard; "
                    f"{self.consequence}",
                )


class ObsTouchpointsGuarded(_TouchpointsGuarded):
    """OBS001: OBS.event/counter/gauge/histogram under ``if OBS.enabled:``."""

    code = "OBS001"
    summary = (
        "obs metric/event touchpoints must sit inside an "
        "`if OBS.enabled:` guard so disabled runs never format arguments"
    )
    singleton = "OBS"
    guarded_methods = frozenset({"event", "counter", "gauge", "histogram"})
    consequence = "disabled runs would still evaluate its arguments"


class FlightRecorderGuarded(_TouchpointsGuarded):
    """OBS003: FREC emitting touchpoints under ``if FREC.enabled:``."""

    code = "OBS003"
    summary = (
        "flight-recorder touchpoints must sit inside an "
        "`if FREC.enabled:` guard so the disabled path never allocates "
        "a record"
    )
    singleton = "FREC"
    guarded_methods = frozenset(
        {
            "emit",
            "emit_send",
            "emit_deliver",
            "set_cause",
            "clear_cause",
            "begin_run",
            "end_run",
        }
    )
    consequence = (
        "disabled runs would still build the record dict and scrub its "
        "attributes"
    )


class TelemetryTouchpointsGuarded(_TouchpointsGuarded):
    """OBS004: OBS.sample / record_*_health under ``if OBS.enabled:``."""

    code = "OBS004"
    summary = (
        "telemetry touchpoints (OBS.sample, record_*_health) must sit "
        "inside an `if OBS.enabled:` guard so disabled runs never "
        "recompute health gauges or format sample context"
    )
    singleton = "OBS"
    guarded_methods = frozenset({"sample"})
    guarded_functions = frozenset(
        {
            "record_coverage_health",
            "record_energy_health",
            "record_protocol_health",
        }
    )
    consequence = (
        "disabled runs would still recompute domain health (holes, "
        "energy profiles) or format the sample context"
    )


class LedgerTouchpointsGuarded(_TouchpointsGuarded):
    """OBS005: LEDGER.record_run under ``if LEDGER.enabled:``."""

    code = "OBS005"
    summary = (
        "run-ledger recording touchpoints must sit inside an "
        "`if LEDGER.enabled:` guard so disabled runs never harvest the "
        "registry or digest artifacts"
    )
    singleton = "LEDGER"
    guarded_methods = frozenset({"record_run"})
    consequence = (
        "disabled runs would still harvest the metrics registry, hash "
        "artifact files and build the row dict"
    )


class ProfiledSitesUnique(Rule):
    """OBS002: ``@profiled(site)`` names are unique across the library."""

    code = "OBS002"
    summary = (
        "@profiled site names must be unique; duplicates silently merge "
        "their timings in profile_seconds{site=...}"
    )

    def __init__(self) -> None:
        self._sites: dict[str, tuple[str, int]] = {}
        self._dupes: list[Finding] = []

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_library:
            return
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and (
                    (isinstance(node.func, ast.Name) and node.func.id == "profiled")
                    or (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "profiled"
                    )
                )
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            site = node.args[0].value
            if site in self._sites:
                first_path, first_line = self._sites[site]
                self._dupes.append(
                    ctx.finding(
                        self.code,
                        node,
                        f"duplicate @profiled site {site!r} (first used at "
                        f"{first_path}:{first_line}); timings would merge "
                        "into one histogram series",
                    )
                )
            else:
                self._sites[site] = (ctx.path, node.lineno)
        return
        yield  # pragma: no cover - makes check a generator

    def finish(self) -> Iterator[Finding]:
        yield from self._dupes
