"""Observability discipline rules: OBS001 (guards), OBS002 (unique sites).

The ``repro.obs`` layer promises that disabled instrumentation costs one
attribute check per touchpoint (the <3% CI gate in
``benchmarks/test_bench_obs_overhead.py`` depends on it).  That only holds
if hot-loop touchpoints — ``OBS.event``/``OBS.counter``/``OBS.gauge``/
``OBS.histogram``, whose *arguments* would otherwise still be evaluated
and formatted — sit inside an ``if OBS.enabled:`` block (OBS001).
``OBS.span`` is exempt: it is used as a context manager around whole
phases and returns a shared null span when disabled.

``@profiled(site)`` site names feed the ``profile_seconds{site=...}``
histogram; two call sites sharing a name silently merge their timings, so
site names must be unique across the library (OBS002).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.lint.framework import FileContext, Finding, Rule

__all__ = ["ObsTouchpointsGuarded", "ProfiledSitesUnique"]

#: OBS methods whose call (and argument evaluation) must be guarded.
_GUARDED_METHODS = frozenset({"event", "counter", "gauge", "histogram"})


def _mentions_obs_enabled(node: ast.AST) -> bool:
    """Does this expression read ``OBS.enabled`` (possibly inside and/or/not)?"""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and sub.attr == "enabled"
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "OBS"
        ):
            return True
    return False


def _is_negated_guard(test: ast.AST) -> bool:
    return (
        isinstance(test, ast.UnaryOp)
        and isinstance(test.op, ast.Not)
        and _mentions_obs_enabled(test.operand)
    )


def _terminates(block: list[ast.stmt]) -> bool:
    return bool(block) and isinstance(
        block[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


class ObsTouchpointsGuarded(Rule):
    """OBS001: OBS.event/counter/gauge/histogram under ``if OBS.enabled:``."""

    code = "OBS001"
    summary = (
        "obs metric/event touchpoints must sit inside an "
        "`if OBS.enabled:` guard so disabled runs never format arguments"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_library or ctx.in_package("repro.obs"):
            return
        yield from self._walk_body(ctx, ctx.tree.body, guarded=False)

    def _walk_body(
        self, ctx: FileContext, body: list[ast.stmt], guarded: bool
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, ast.If):
                if _mentions_obs_enabled(stmt.test) and not _is_negated_guard(
                    stmt.test
                ):
                    yield from self._walk_body(ctx, stmt.body, guarded=True)
                    yield from self._walk_body(ctx, stmt.orelse, guarded=guarded)
                elif _is_negated_guard(stmt.test) and _terminates(stmt.body):
                    # ``if not OBS.enabled: return`` -- the rest of this
                    # block runs only when enabled
                    yield from self._walk_body(ctx, stmt.body, guarded=guarded)
                    yield from self._walk_body(ctx, stmt.orelse, guarded=True)
                    guarded = True
                else:
                    if not guarded:
                        yield from self._check_expr(ctx, stmt.test)
                    yield from self._walk_body(ctx, stmt.body, guarded)
                    yield from self._walk_body(ctx, stmt.orelse, guarded)
                continue
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                # a nested def runs later, outside the enclosing guard
                yield from self._walk_body(ctx, stmt.body, guarded=False)
                continue
            if isinstance(
                stmt,
                (ast.While, ast.For, ast.AsyncFor, ast.With, ast.AsyncWith, ast.Try),
            ):
                if not guarded:
                    for expr in self._header_exprs(stmt):
                        yield from self._check_expr(ctx, expr)
                for attr in ("body", "orelse", "finalbody"):
                    block = getattr(stmt, attr, None)
                    if block:
                        yield from self._walk_body(ctx, block, guarded)
                for handler in getattr(stmt, "handlers", []):
                    yield from self._walk_body(ctx, handler.body, guarded)
                continue
            if not guarded:
                yield from self._check_expr(ctx, stmt)

    @staticmethod
    def _header_exprs(stmt: ast.stmt) -> list[ast.expr]:
        exprs: list[ast.expr] = []
        for attr in ("test", "iter"):
            value = getattr(stmt, attr, None)
            if value is not None:
                exprs.append(value)
        for item in getattr(stmt, "items", []):
            exprs.append(item.context_expr)
        return exprs

    def _check_expr(self, ctx: FileContext, root: ast.AST) -> Iterator[Finding]:
        """Flag touchpoint calls anywhere under an unguarded node."""
        for node in ast.walk(root):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _GUARDED_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "OBS"
            ):
                yield ctx.finding(
                    self.code,
                    node,
                    f"`OBS.{node.func.attr}(...)` is not inside an "
                    "`if OBS.enabled:` guard; disabled runs would still "
                    "evaluate its arguments",
                )


class ProfiledSitesUnique(Rule):
    """OBS002: ``@profiled(site)`` names are unique across the library."""

    code = "OBS002"
    summary = (
        "@profiled site names must be unique; duplicates silently merge "
        "their timings in profile_seconds{site=...}"
    )

    def __init__(self) -> None:
        self._sites: dict[str, tuple[str, int]] = {}
        self._dupes: list[Finding] = []

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_library:
            return
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and (
                    (isinstance(node.func, ast.Name) and node.func.id == "profiled")
                    or (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "profiled"
                    )
                )
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            site = node.args[0].value
            if site in self._sites:
                first_path, first_line = self._sites[site]
                self._dupes.append(
                    ctx.finding(
                        self.code,
                        node,
                        f"duplicate @profiled site {site!r} (first used at "
                        f"{first_path}:{first_line}); timings would merge "
                        "into one histogram series",
                    )
                )
            else:
                self._sites[site] = (ctx.path, node.lineno)
        return
        yield  # pragma: no cover - makes check a generator

    def finish(self) -> Iterator[Finding]:
        yield from self._dupes
