"""Correctness tooling: AST lints, runtime invariant sanitizer, typing gate.

Three layers, one goal — catch invariant violations at lint time or at the
violating line instead of three figures later:

* :mod:`repro.checks.lint` — project-specific AST lints
  (``python -m repro.checks.lint src/ tests/``);
* :mod:`repro.checks.contracts` — the ``REPRO_CHECKS=1`` runtime
  sanitizer (array write-protection + greedy-step invariant validation)
  behind the :data:`CHECKS` switch;
* the mypy strictness ladder configured in ``pyproject.toml`` and
  ratcheted by ``tools/typing_ratchet.py``.

See ``docs/static_analysis.md`` for the full guide.  The lint subpackage
is intentionally *not* imported here: importing :mod:`repro.checks` from
hot paths (FieldModel does) must stay free of linter machinery.
"""

from repro.checks.contracts import (
    NULL_CHECKER,
    GreedyStepChecker,
    freeze_csr,
    greedy_checker,
    validate_adjacency_symmetry,
    validate_engine_consistency,
    validate_warm_engine,
)
from repro.checks.runtime import CHECKS, ChecksRuntime

__all__ = [
    "CHECKS",
    "ChecksRuntime",
    "NULL_CHECKER",
    "GreedyStepChecker",
    "freeze_csr",
    "greedy_checker",
    "validate_adjacency_symmetry",
    "validate_engine_consistency",
    "validate_warm_engine",
]
