"""The process-wide invariant-sanitizer switch.

Mirrors the :data:`repro.obs.runtime.OBS` pattern: one module-level
:data:`CHECKS` singleton every guarded site consults, **off by default**.
Disabled call sites pay one attribute check (or receive a shared null
object from :func:`repro.checks.contracts.greedy_checker`), so production
sweeps are bit-identical and essentially free of sanitizer cost.

Turn it on with ``REPRO_CHECKS=1`` in the environment before import, or
programmatically via ``CHECKS.enable()``.  The contract — like a race
detector or ASan for a native stack — is that enabling the sanitizer
**never changes results**, it only validates them and raises
:class:`~repro.errors.InvariantError` at the violating step.

>>> from repro.checks.runtime import ChecksRuntime
>>> rt = ChecksRuntime()
>>> rt.enabled
False
>>> rt.enable()
>>> rt.enabled
True
>>> rt.disable()
>>> rt.enabled
False
"""

from __future__ import annotations

import os

__all__ = ["ChecksRuntime", "CHECKS"]


class ChecksRuntime:
    """Switch for the runtime invariant sanitizer (`repro.checks.contracts`)."""

    def __init__(self) -> None:
        self.enabled = False

    def enable(self) -> None:
        """Turn invariant checking on for subsequently built objects.

        Arrays are write-protected at *build* time, so enable the runtime
        before constructing the field models / engines you want guarded
        (setting ``REPRO_CHECKS=1`` before the process starts covers
        everything).
        """
        self.enabled = True

    def disable(self) -> None:
        """Turn invariant checking off (already-frozen arrays stay frozen)."""
        self.enabled = False


#: The process-wide sanitizer switch all guarded repro code consults.
CHECKS = ChecksRuntime()

if os.environ.get("REPRO_CHECKS", "") not in ("", "0"):  # pragma: no cover
    CHECKS.enable()
