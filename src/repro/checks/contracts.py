"""Runtime invariant sanitizer for the DECOR placement pipeline.

Opt-in via ``REPRO_CHECKS=1`` (see :mod:`repro.checks.runtime`), this module
is the dynamic half of ``repro.checks``: where the AST linter catches
invariant-threatening *patterns* at lint time, the sanitizer validates the
invariants themselves while the code runs, and raises
:class:`~repro.errors.InvariantError` **at the violating step** instead of
letting a corrupted count surface three figures later as a skewed average.

Guarded invariants
------------------

``benefit-consistency``
    The incrementally maintained benefit vector must equal the batch
    recompute ``b = A_benefit @ max(k - counts, 0)`` (paper Eq. 1) after
    every greedy step — the exact invariant per-node state divergence
    breaks in distributed set-cover implementations.
``counts-nonnegative``
    Coverage counts can never go below zero.
``adjacency-symmetry``
    The CSR coverage adjacency must be symmetric (undirected closeness).
``placement-in-bounds``
    Every placed position must lie inside the field's bounding box.
``deficiency-monotone``
    Residual total deficiency never increases across greedy steps.

Array write-protection
----------------------

:func:`freeze_csr` write-protects the ``data``/``indices``/``indptr``
payloads of sparse matrices crossing the :class:`~repro.field.FieldModel`
cache boundary, so a consumer mutating a shared adjacency trips a NumPy
``ValueError: assignment destination is read-only`` at the mutation site
(dense arrays leaving the cache are already frozen unconditionally).

Call sites use the null-object pattern: :func:`greedy_checker` returns the
shared no-op :data:`NULL_CHECKER` while the runtime is disabled, so the hot
loop pays one no-op method call per placement and results stay
bit-identical (the sanitizer only ever reads).

>>> import numpy as np
>>> from repro.checks.runtime import ChecksRuntime
>>> from repro.core.benefit import BenefitEngine
>>> rt = ChecksRuntime(); rt.enable()
>>> eng = BenefitEngine(np.array([[0.0, 0.0], [1.0, 0.0]]), 2.0, 1)
>>> checker = greedy_checker(eng, method="demo", checks=rt)
>>> _ = eng.place_at(0)
>>> checker.after_step(0, 0, eng.field.points[0])   # consistent: passes
>>> eng._counts[1] -= 1                             # corrupt the state
>>> checker.after_step(1, 1, eng.field.points[1])   # doctest: +ELLIPSIS
Traceback (most recent call last):
    ...
repro.errors.InvariantError: invariant 'benefit-consistency' violated at step 1: ...
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Union

import numpy as np
from scipy import sparse

from repro.checks.runtime import CHECKS, ChecksRuntime
from repro.errors import InvariantError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.benefit import BenefitEngine

__all__ = [
    "freeze_csr",
    "NULL_CHECKER",
    "GreedyStepChecker",
    "greedy_checker",
    "validate_adjacency_symmetry",
    "validate_engine_consistency",
    "validate_warm_engine",
]


def freeze_csr(matrix: sparse.spmatrix) -> sparse.spmatrix:
    """Write-protect a sparse matrix's backing arrays, in place.

    Applied to CSR/CSC-style matrices as they cross a cache boundary while
    the sanitizer is enabled; consumers keep full read access but any
    in-place mutation of the shared payload raises immediately.
    """
    for attr in ("data", "indices", "indptr"):
        arr = getattr(matrix, attr, None)
        if isinstance(arr, np.ndarray):
            arr.flags.writeable = False
    return matrix


def validate_adjacency_symmetry(
    adjacency: sparse.spmatrix, *, step: int | None = None, method: str = ""
) -> None:
    """Raise :class:`InvariantError` unless ``adjacency`` is symmetric."""
    asym = (adjacency - adjacency.T).nnz
    if asym:
        raise InvariantError(
            "adjacency-symmetry",
            f"coverage adjacency has {asym} asymmetric entries "
            f"(method={method!r})",
            step=step,
        )


def validate_engine_consistency(
    engine: "BenefitEngine", *, step: int | None = None, method: str = ""
) -> None:
    """Check coverage-count/benefit consistency of a live engine.

    Recomputes the benefit vector from the coverage counts (Eq. 1 batch
    form) and compares against the incrementally maintained vector; also
    rejects negative counts.  Read-only: never mutates the engine.
    """
    counts = engine.counts
    if counts.min(initial=0) < 0:
        bad = int(np.argmin(counts))
        raise InvariantError(
            "counts-nonnegative",
            f"coverage count of field point {bad} is {int(counts[bad])} "
            f"(method={method!r})",
            step=step,
        )
    expected = engine.recomputed_benefit()
    actual = engine.benefit
    mismatch = ~np.isclose(actual, expected)
    if np.any(mismatch):
        where = np.nonzero(mismatch)[0]
        raise InvariantError(
            "benefit-consistency",
            f"incremental benefit diverged from Eq. 1 recompute at "
            f"{int(where.size)} point(s), first at field point "
            f"{int(where[0])} (method={method!r})",
            step=step,
        )


def validate_warm_engine(
    engine: "BenefitEngine",
    initial_positions: np.ndarray,
    *,
    epoch: int | None = None,
) -> None:
    """Check a warm engine against a cold rebuild from the survivors.

    The region-scoped invalidation contract: after removing the failed
    sensors' coverage rows, a warm engine's counts and benefit vector must
    be *exactly* (integer-exact, not approximately) the state a fresh
    engine built from ``initial_positions`` would hold — that equality is
    what makes warm restoration bit-identical to the cold path.  O(field)
    per epoch — sanitizer pricing, like the per-step Eq. 1 recompute.
    """
    from repro.core.benefit import BenefitEngine  # import cycle guard

    ben = engine.benefit_adjacency
    reference = BenefitEngine(
        engine.field,
        engine.sensing_radius,
        np.asarray(engine.k_per_point),
        benefit_adjacency=None if ben is engine.coverage_adjacency else ben,
        benefit_mode=engine.benefit_mode,
    )
    for pos in np.asarray(initial_positions, dtype=np.float64).reshape(-1, 2):
        reference.add_sensor_at_position(pos)
    if not np.array_equal(engine.counts, reference.counts):
        bad = np.nonzero(engine.counts != reference.counts)[0]
        raise InvariantError(
            "warm-equals-cold",
            f"warm coverage counts diverged from the cold rebuild at "
            f"{int(bad.size)} point(s), first at field point {int(bad[0])}",
            step=epoch,
        )
    if not np.array_equal(engine.benefit, reference.benefit):
        bad = np.nonzero(engine.benefit - reference.benefit)[0]
        raise InvariantError(
            "warm-equals-cold",
            f"warm benefit vector diverged from the cold rebuild at "
            f"{int(bad.size)} point(s), first at field point {int(bad[0])}",
            step=epoch,
        )


class _NullChecker:
    """Shared no-op stand-in for :class:`GreedyStepChecker` when disabled."""

    __slots__ = ()

    def after_step(
        self, step: int, point_index: int, position: np.ndarray
    ) -> None:
        return None


#: The no-op checker :func:`greedy_checker` returns while disabled.
NULL_CHECKER = _NullChecker()


class GreedyStepChecker:
    """Per-run invariant validator for a greedy placement loop.

    Construction validates the adjacency once (symmetry) and snapshots the
    starting deficiency; :meth:`after_step` re-validates the engine after
    every placement.  O(nnz) per step — sanitizer pricing, like running
    under ASan — which is why production runs leave ``REPRO_CHECKS`` unset.
    """

    __slots__ = ("_engine", "_method", "_lo", "_hi", "_last_deficiency")

    def __init__(self, engine: "BenefitEngine", *, method: str = "") -> None:
        self._engine = engine
        self._method = method
        pts = engine.field.points
        self._lo = pts.min(axis=0)
        self._hi = pts.max(axis=0)
        validate_adjacency_symmetry(engine.coverage_adjacency, method=method)
        self._last_deficiency = engine.total_deficiency()

    def after_step(
        self, step: int, point_index: int, position: np.ndarray
    ) -> None:
        """Validate all step invariants after placement number ``step``."""
        engine, method = self._engine, self._method
        pos = np.asarray(position, dtype=np.float64).reshape(-1)
        tol = 1e-9
        if np.any(pos < self._lo - tol) or np.any(pos > self._hi + tol):
            raise InvariantError(
                "placement-in-bounds",
                f"position {pos.tolist()} for field point {point_index} lies "
                f"outside the field bounding box "
                f"[{self._lo.tolist()}, {self._hi.tolist()}] "
                f"(method={method!r})",
                step=step,
            )
        validate_engine_consistency(engine, step=step, method=method)
        deficiency = engine.total_deficiency()
        if deficiency > self._last_deficiency:
            raise InvariantError(
                "deficiency-monotone",
                f"total deficiency rose {self._last_deficiency} -> "
                f"{deficiency} after placing field point {point_index} "
                f"(method={method!r})",
                step=step,
            )
        self._last_deficiency = deficiency


def greedy_checker(
    engine: "BenefitEngine",
    *,
    method: str = "",
    checks: ChecksRuntime | None = None,
) -> Union[GreedyStepChecker, _NullChecker]:
    """A step checker for ``engine``, or the shared no-op when disabled.

    ``checks`` overrides the global :data:`~repro.checks.runtime.CHECKS`
    runtime (tests and doctests); the hot-loop contract is one cheap call
    here per run and one no-op method call per placement when disabled.
    """
    runtime = CHECKS if checks is None else checks
    if not runtime.enabled:
        return NULL_CHECKER
    return GreedyStepChecker(engine, method=method)
