"""Command-line interface.

Usage (installed as ``decor`` or via ``python -m repro.cli``)::

    decor figure 8                      # regenerate a paper figure (smoke scale)
    decor figure 10 --scale paper       # full paper-scale run
    decor figure 8 --json out.json      # persist the series
    decor deploy --k 3 --method voronoi # one deployment, metrics + ASCII view
    decor summary --k 3                 # one-row-per-method bottom line
    decor restore --k 3 --method grid   # deploy, disaster, repair, report
    decor restore --epochs 5 --warm     # survive 5 failure epochs, warm engine
    decor lifetime --k 3                # sleep-shift lifetime multiplier
    decor gallery                       # paper Figures 4-6 as ASCII art

Scale selection: ``--scale`` beats the ``REPRO_SCALE`` environment variable,
which beats the default ("smoke").

Parallelism: ``--workers N`` (on figure and summary) shards the independent
``(series, k, seed)`` deployments across N worker processes and merges the
results deterministically — the output is bit-identical to a serial run.
See ``docs/performance.md``.

Observability: ``--trace out.jsonl`` / ``--metrics out.json`` (on figure,
deploy, summary and restore) enable the :mod:`repro.obs` runtime for the
invocation and export the recorded spans/events and metric series; a trace
summary table is printed either way.  ``REPRO_OBS=1`` enables recording
without exporting.

Flight recording: ``--flight-record out.jsonl`` (same commands) records a
causal per-node protocol event log (see :mod:`repro.obs.flightrec`) whose
header embeds a cleaned argv, so ``decor replay out.jsonl`` can re-execute
the command and verify the stream reproduces byte for byte — including
sweeps recorded with ``--workers N``, which replay serially.

Live telemetry: ``--sample sink.jsonl`` streams timestamped metric deltas
and ``health_*`` gauges to a JSONL sink while the command runs
(``REPRO_OBS_SAMPLE=<period>`` throttles to wall-time sampling; the
default is one row per hook in deterministic logical time).  Watch a sink
with ``decor top sink.jsonl --follow``, serve any export as a Prometheus
scrape endpoint with ``decor obs serve``, grammar-check an endpoint with
``decor obs scrape URL``, and pretty-print exports offline with
``decor obs summarize PATH`` (``--diff A B`` compares two sample sinks).
See ``docs/observability.md``.

Run ledger: ``--ledger [PATH]`` (or ``REPRO_LEDGER=1``) appends one
structured history row per figure/deploy/summary/restore invocation —
config fingerprint, environment, staged wall timings, harvested
counters/gauges, artifact digests — to an append-only JSONL store
(default ``.decor/ledger``).  Query it with ``decor runs list|show|diff|
regress``; ``diff --exit-code`` and ``regress`` return nonzero on
semantic drift, which is the CI regression gate.
"""

from __future__ import annotations

import argparse
import os
import sys


from repro._version import __version__
from repro.analysis.metrics import evaluate_deployment
from repro.core.planner import DecorPlanner, METHODS
from repro.errors import ConfigurationError, ReproError
from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.recording import figure_to_csv, figure_to_json
from repro.experiments.runner import DeploymentCache
from repro.experiments.setup import ExperimentSetup
from repro.geometry.region import Rect
from repro.network.failures import area_failure
from repro.network.spec import SensorSpec
from repro.obs import FREC, LEDGER, OBS, bridge_field_stats
from repro.viz.ascii_field import render_coverage, render_deployment, render_points

__all__ = ["main", "build_parser"]


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="PATH",
        help="enable instrumentation; write the span/event trace as JSON lines",
    )
    parser.add_argument(
        "--metrics", metavar="PATH",
        help="enable instrumentation; write the metrics dump as JSON",
    )
    parser.add_argument(
        "--flight-record", metavar="PATH",
        help="record a replayable causal protocol event log as JSON lines "
             "(verify it later with `decor replay PATH`)",
    )
    parser.add_argument(
        "--sample", metavar="PATH",
        help="enable instrumentation; stream time-series health/metric "
             "samples to a JSONL sink (watch it with `decor top PATH`; "
             "REPRO_OBS_SAMPLE=<seconds> switches to wall-time throttling)",
    )
    parser.add_argument(
        "--ledger", metavar="PATH", nargs="?", const="",
        help="append a run-history row (config fingerprint, counters, "
             "health gauges, staged walls, artifact digests) to the "
             "ledger at PATH (default .decor/ledger; query it with "
             "`decor runs`)",
    )


def _obs_begin(args: argparse.Namespace) -> bool:
    """Enable a fresh obs runtime when an export flag asks for one.

    ``--ledger [PATH]`` (or a pre-set ``REPRO_LEDGER``) also counts: the
    ledger harvests its counters from this invocation's obs runtime, and
    attaches a logical-clock sampler when no other sampling is configured
    so the harvest aggregates sample rows — which are byte-identical
    between serial and ``--workers N`` runs — instead of the registry's
    schedule-dependent terminal state.
    """
    ledger = getattr(args, "ledger", None)
    if ledger is not None:
        LEDGER.enable(ledger or None)
    wants = bool(
        getattr(args, "trace", None)
        or getattr(args, "metrics", None)
        or getattr(args, "sample", None)
        or LEDGER.enabled
    )
    if wants:
        stream = None
        sample_path = getattr(args, "sample", None)
        if sample_path:
            stream = open(sample_path, "w", encoding="utf-8")
            args._sample_stream = stream
        period = None
        if (
            LEDGER.enabled
            and stream is None
            and not os.environ.get("REPRO_OBS_SAMPLE")
        ):
            period = 0.0
        OBS.enable(fresh=True, sample=period, sample_stream=stream)
    return wants


#: Flags stripped from the argv recorded in a flight stream's header:
#: output/export paths and worker counts do not affect the event stream,
#: and stripping ``--flight-record`` itself keeps replay from recursing.
_NON_REPLAY_FLAGS = (
    "--flight-record", "--trace", "--metrics", "--sample", "--json", "--csv",
    "--workers", "--ledger",
)


def _flightrec_argv(argv: list[str]) -> list[str]:
    """Clean argv for a flight-stream header (drops non-semantic flags)."""
    out: list[str] = []
    skip = False
    for token in argv:
        if skip:
            skip = False
            continue
        if token in _NON_REPLAY_FLAGS:
            skip = True
            continue
        if any(token.startswith(flag + "=") for flag in _NON_REPLAY_FLAGS):
            continue
        out.append(token)
    return out


def _obs_finish(args: argparse.Namespace) -> None:
    """Export and print what the finished command recorded."""
    from repro.experiments.summary import summarize_trace

    OBS.disable()
    if getattr(args, "trace", None):
        n = OBS.tracer.write_jsonl(args.trace)
        print(f"wrote {args.trace} ({n} trace records)")
    if getattr(args, "metrics", None):
        n = OBS.metrics.write_json(args.metrics)
        print(f"wrote {args.metrics} ({n} metric series)")
    if getattr(args, "sample", None):
        stream = getattr(args, "_sample_stream", None)
        if stream is not None:
            stream.close()
        n = OBS.sampler.seq if OBS.sampler is not None else 0
        print(f"wrote {args.sample} ({n} sample rows)")
    print(summarize_trace(OBS.tracer).format())


def _ledger_pend(
    args: argparse.Namespace,
    kind: str,
    label: str,
    config: dict,
    **artifacts: str | None,
) -> None:
    """Stash the ledger row parts; ``main`` appends after artifacts close.

    The flight-record stream is finalized by ``main`` *after* dispatch
    returns, so artifact digests (and therefore the row) must wait until
    then — commands only declare what the row should say.
    """
    if not LEDGER.enabled:
        return
    args._ledger_pend = {
        "kind": kind,
        "label": label,
        "config": config,
        "artifacts": {k: v for k, v in artifacts.items() if v},
    }


def _ledger_finish(args: argparse.Namespace) -> None:
    """Append the pending row (harvest + digests) to the run ledger."""
    if not LEDGER.enabled:
        return
    pend = getattr(args, "_ledger_pend", None)
    if pend is None:
        return
    from repro.obs.ledger import capture_environment

    workers = getattr(args, "workers", None)
    row = LEDGER.record_run(
        pend["kind"],
        pend["label"],
        pend["config"],
        artifacts=pend["artifacts"],
        env=capture_environment(workers=workers or 1),
    )
    if row is not None and LEDGER.store is not None:
        print(f"ledger: recorded {row['run_id']} -> {LEDGER.store.root}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="decor",
        description="DECOR k-coverage restoration (IPPS 2007 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"decor {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("number", type=int, choices=sorted(FIGURES))
    p_fig.add_argument("--scale", choices=["smoke", "paper"], default=None)
    p_fig.add_argument("--seeds", type=int, default=None, help="override seed count")
    p_fig.add_argument("--json", metavar="PATH", help="also write JSON")
    p_fig.add_argument("--csv", metavar="PATH", help="also write CSV")
    p_fig.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="compute the figure's deployments across N worker processes "
             "(bit-identical output; default: serial)",
    )
    _add_obs_args(p_fig)

    p_dep = sub.add_parser("deploy", help="run one deployment and report metrics")
    p_dep.add_argument("--k", type=int, default=3)
    p_dep.add_argument("--method", choices=METHODS, default="voronoi")
    p_dep.add_argument("--side", type=float, default=50.0, help="field side length")
    p_dep.add_argument("--points", type=int, default=500, help="field points")
    p_dep.add_argument("--rs", type=float, default=4.0)
    p_dep.add_argument("--rc", type=float, default=8.0)
    p_dep.add_argument("--cell-size", type=float, default=5.0)
    p_dep.add_argument("--seed", type=int, default=0)
    p_dep.add_argument("--ascii", action="store_true", help="render the deployment")
    _add_obs_args(p_dep)

    p_sum = sub.add_parser("summary", help="per-method bottom line at one k")
    p_sum.add_argument("--k", type=int, default=3)
    p_sum.add_argument("--scale", choices=["smoke", "paper"], default=None)
    p_sum.add_argument("--seeds", type=int, default=None)
    p_sum.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="compute the per-method deployments across N worker processes",
    )
    _add_obs_args(p_sum)

    p_res = sub.add_parser("restore", help="deploy, break, repair, report")
    p_res.add_argument("--k", type=int, default=2)
    p_res.add_argument("--method", choices=METHODS, default="voronoi")
    p_res.add_argument("--side", type=float, default=50.0)
    p_res.add_argument("--points", type=int, default=500)
    p_res.add_argument("--rs", type=float, default=4.0)
    p_res.add_argument("--rc", type=float, default=8.0)
    p_res.add_argument("--cell-size", type=float, default=5.0)
    p_res.add_argument("--disaster-radius", type=float, default=None,
                       help="default: 0.24 x side (the paper's proportion)")
    p_res.add_argument("--seed", type=int, default=0)
    p_res.add_argument(
        "--epochs", type=int, default=1, metavar="N",
        help="survive N failure epochs (disc/random/correlated schedule) "
             "through one RestorationSession (default: one disaster disc)",
    )
    strat = p_res.add_mutually_exclusive_group()
    strat.add_argument(
        "--warm", dest="warm", action="store_true", default=None,
        help="keep the benefit engine warm across epochs "
             "(region-scoped invalidation; default, see REPRO_RESTORE)",
    )
    strat.add_argument(
        "--cold", dest="warm", action="store_false",
        help="rebuild all placement state each epoch (the paper's loop)",
    )
    _add_obs_args(p_res)

    p_life = sub.add_parser("lifetime", help="sleep-shift lifetime multiplier")
    p_life.add_argument("--k", type=int, default=3)
    p_life.add_argument("--side", type=float, default=50.0)
    p_life.add_argument("--points", type=int, default=500)
    p_life.add_argument("--rs", type=float, default=4.0)
    p_life.add_argument("--rc", type=float, default=8.0)
    p_life.add_argument("--capacity", type=float, default=1000.0)
    p_life.add_argument("--seed", type=int, default=0)

    sub.add_parser("gallery", help="print paper Figures 4-6 as ASCII art")

    p_obs = sub.add_parser(
        "obs", help="telemetry tooling: serve, scrape, summarize exports"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_serve = obs_sub.add_parser(
        "serve",
        help="serve a metrics/sample export as a Prometheus scrape endpoint",
    )
    p_serve.add_argument(
        "source", metavar="PATH",
        help="a --metrics JSON or --sample JSONL export (re-read per scrape)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=9464)
    p_serve.add_argument(
        "--once", action="store_true",
        help="print the exposition once and exit instead of serving",
    )
    p_scrape = obs_sub.add_parser(
        "scrape", help="fetch an exposition endpoint and validate its grammar"
    )
    p_scrape.add_argument("url", metavar="URL")
    p_sumz = obs_sub.add_parser(
        "summarize",
        help="pretty-print an exported metrics JSON / trace or sample JSONL",
    )
    p_sumz.add_argument("source", metavar="PATH", nargs="+")
    p_sumz.add_argument(
        "--diff", action="store_true",
        help="compare two sample sinks (counter deltas, gauge "
             "trajectories, histogram quantile shifts); takes exactly "
             "two PATH arguments",
    )

    p_runs = sub.add_parser(
        "runs", help="query the run ledger: list, show, diff, regress"
    )
    p_runs.add_argument(
        "--ledger", metavar="PATH", default=None,
        help="ledger root directory (default .decor/ledger)",
    )
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)
    p_rls = runs_sub.add_parser("list", help="list recorded runs")
    p_rls.add_argument("--kind", default=None, help="filter by row kind")
    p_rls.add_argument("--label", default=None, help="filter by row label")
    p_rls.add_argument("--limit", type=int, default=20, metavar="N",
                       help="show at most N most recent rows (default 20)")
    p_rsh = runs_sub.add_parser("show", help="print one run row as JSON")
    p_rsh.add_argument("ref", metavar="REF",
                       help="run-id prefix, 'latest', or 'latest~N'")
    p_rdf = runs_sub.add_parser("diff", help="semantic diff of two runs")
    p_rdf.add_argument("ref_a", metavar="A")
    p_rdf.add_argument("ref_b", metavar="B")
    p_rdf.add_argument(
        "--exit-code", action="store_true",
        help="exit 1 when the semantic sections differ (for CI gates)",
    )
    p_rgr = runs_sub.add_parser(
        "regress", help="run regression detectors against the run's history"
    )
    p_rgr.add_argument("ref", metavar="REF", nargs="?", default="latest",
                       help="run to check (default: latest)")
    p_rgr.add_argument("--window", type=int, default=5, metavar="N",
                       help="baseline window size (default 5)")
    p_rgr.add_argument("--tolerance", type=float, default=0.1,
                       help="relative drift tolerance for counters "
                            "(default 0.1)")
    p_rgr.add_argument("--wall-tolerance", type=float, default=0.5,
                       help="relative wall slowdown tolerance (default 0.5)")
    p_rgr.add_argument(
        "--detector", action="append", default=None, metavar="NAME",
        help="run only this detector (repeatable; default: all registered)",
    )

    p_top = sub.add_parser(
        "top", help="terminal dashboard over a --sample JSONL sink"
    )
    p_top.add_argument("source", metavar="PATH")
    p_top.add_argument(
        "--follow", action="store_true",
        help="keep re-reading the sink (attach to a running sweep)",
    )
    p_top.add_argument("--interval", type=float, default=2.0, metavar="S",
                       help="refresh period with --follow (default 2s)")
    p_top.add_argument("--frames", type=int, default=None, metavar="N",
                       help="stop after N frames (default: 1, endless with "
                            "--follow)")
    p_top.add_argument("--width", type=int, default=48,
                       help="sparkline width (default 48)")
    p_top.add_argument("--limit", type=int, default=24,
                       help="max series shown (default 24)")
    p_top.add_argument("--prefix", default="", metavar="P",
                       help="only series starting with P (try health_)")

    p_chk = sub.add_parser(
        "check",
        help="run every static gate: flow, lint, typing, mypy, bench",
    )
    p_chk.add_argument(
        "--output", choices=["text", "json", "sarif"], default="text",
        help="report format (sarif feeds GitHub code scanning)",
    )
    p_chk.add_argument(
        "--skip", action="append", default=[], metavar="GATE",
        choices=["flow", "lint", "typing", "mypy", "bench"],
        help="skip a gate (repeatable; e.g. --skip bench for pre-commit)",
    )

    p_rep = sub.add_parser(
        "replay", help="validate and re-verify a flight recording"
    )
    p_rep.add_argument("recording", metavar="PATH",
                       help="a JSONL flight recording (from --flight-record)")
    p_rep.add_argument("--no-verify", action="store_true",
                       help="only validate the schema, do not re-execute")
    p_rep.add_argument("--timeline", metavar="PATH",
                       help="also render a swim-lane SVG of one run block")
    p_rep.add_argument("--run", type=int, default=1, metavar="N",
                       help="run block to render with --timeline (default 1)")
    return parser


def _setup_from_args(args: argparse.Namespace) -> ExperimentSetup:
    scale = args.scale or os.environ.get("REPRO_SCALE")
    setup = ExperimentSetup.from_env(scale)
    if args.seeds is not None:
        setup = setup.with_seeds(args.seeds)
    return setup


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.tables import format_figure_table

    obs = _obs_begin(args)
    setup = _setup_from_args(args)
    cache = DeploymentCache(setup)
    with LEDGER.stage("figure"):
        if args.workers is not None and args.workers > 1:
            from repro.parallel import WorkerPool

            with WorkerPool.for_cache(cache, workers=args.workers) as pool:
                result = run_figure(setup, args.number, cache, pool=pool)
        else:
            result = run_figure(setup, args.number, cache)
    print(format_figure_table(result))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(figure_to_json(result))
        print(f"wrote {args.json}")
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as fh:
            fh.write(figure_to_csv(result))
        print(f"wrote {args.csv}")
    if obs:
        _obs_finish(args)
    _ledger_pend(
        args, "figure", f"fig{args.number:02d}",
        {"command": "figure", "figure": args.number, **cache.describe()},
        figure_json=args.json, figure_csv=args.csv,
        sample_sink=getattr(args, "sample", None),
        flight_record=getattr(args, "flight_record", None),
    )
    return 0


def _planner_config(args: argparse.Namespace, command: str) -> dict:
    """The semantic config of a planner-shaped command (deploy/restore)."""
    return {
        "command": command,
        "k": args.k,
        "method": args.method,
        "side": args.side,
        "points": args.points,
        "rs": args.rs,
        "rc": args.rc,
        "cell_size": args.cell_size,
        "seed": args.seed,
        "selection": os.environ.get("REPRO_SELECTION", "lazy"),
        "kernel": os.environ.get("REPRO_KERNEL", "numpy"),
    }


def _cmd_deploy(args: argparse.Namespace) -> int:
    obs = _obs_begin(args)
    planner = DecorPlanner(
        Rect.square(args.side),
        SensorSpec(args.rs, args.rc),
        n_points=args.points,
        seed=args.seed,
    )
    with LEDGER.stage("deploy"):
        result = planner.deploy(
            args.k, method=args.method, cell_size=args.cell_size
        )
    metrics = evaluate_deployment(result, area=planner.region.area)
    for key, value in metrics.as_row().items():
        print(f"{key:>18}: {value}")
    if args.ascii:
        print(
            render_deployment(
                planner.region,
                planner.field_points,
                result.deployment.alive_positions(),
                title=f"{args.method} deployment, k={args.k}",
            )
        )
    if obs:
        bridge_field_stats(planner.field)
        _obs_finish(args)
    _ledger_pend(
        args, "deploy", f"deploy-{args.method}-k{args.k}",
        _planner_config(args, "deploy"),
        sample_sink=getattr(args, "sample", None),
        flight_record=getattr(args, "flight_record", None),
    )
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    from repro.experiments import format_summary_table, method_summary
    from repro.experiments.runner import DeploymentCache

    obs = _obs_begin(args)
    setup = _setup_from_args(args)
    k = min(args.k, max(setup.k_values))
    cache = DeploymentCache(setup)
    with LEDGER.stage("summary"):
        if args.workers is not None and args.workers > 1:
            from repro.experiments.setup import SERIES
            from repro.parallel import WorkerPool

            cells = [
                (s.name, k, seed)
                for s in SERIES
                for seed in range(setup.n_seeds)
            ]
            with WorkerPool.for_cache(cache, workers=args.workers) as pool:
                cache.prefill(cells, pool=pool)
        rows = method_summary(setup, k, cache)
    print(format_summary_table(rows))
    if obs:
        _obs_finish(args)
    _ledger_pend(
        args, "summary", f"summary-k{k}",
        {"command": "summary", "k": k, **cache.describe()},
        sample_sink=getattr(args, "sample", None),
        flight_record=getattr(args, "flight_record", None),
    )
    return 0


def _cmd_restore(args: argparse.Namespace) -> int:
    if args.epochs < 1:
        raise ConfigurationError(f"--epochs must be >= 1, got {args.epochs}")
    obs = _obs_begin(args)
    planner = DecorPlanner(
        Rect.square(args.side),
        SensorSpec(args.rs, args.rc),
        n_points=args.points,
        seed=args.seed,
    )
    with LEDGER.stage("deploy"):
        result = planner.deploy(
            args.k, method=args.method, cell_size=args.cell_size
        )
    radius = args.disaster_radius or 0.24 * args.side
    print(f"deployed           : {result.total_alive} nodes (k={args.k}, "
          f"{args.method})")
    if args.epochs == 1 and args.warm is None:
        # the classic one-shot flow: one disaster disc, one repair
        event = area_failure(result.deployment, planner.region.center, radius)
        with LEDGER.stage("restore"):
            report = planner.restore_after(
                result, event, method=args.method, cell_size=args.cell_size
            )
        print(f"disaster           : radius {radius:g}, "
              f"{event.n_failed} nodes lost")
        print(f"coverage after loss: {report.covered_after_failure:.1%}")
        print(f"repair             : +{report.extra_nodes} nodes -> "
              f"{report.covered_after_repair:.0%} k-covered")
    else:
        from repro.experiments.epochs import epoch_failure

        session = planner.session(
            result, method=args.method, warm=args.warm,
            cell_size=args.cell_size,
        )
        total = 0
        with LEDGER.stage("restore"):
            for epoch in range(args.epochs):
                event = epoch_failure(
                    session.deployment, planner.region, epoch, args.seed,
                    radius=radius,
                )
                report = session.restore(event)
                total += report.extra_nodes
                print(f"epoch {epoch} ({event.kind:>10}): "
                      f"{event.n_failed} lost, "
                      f"{report.covered_after_failure:.1%} after loss, "
                      f"repair +{report.extra_nodes} -> "
                      f"{report.covered_after_repair:.0%} k-covered")
        mode = "warm" if session.warm else "cold"
        print(f"survived           : {session.epoch} epochs ({mode}), "
              f"+{total} nodes total, "
              f"{session.deployment.n_alive} alive")
    if obs:
        bridge_field_stats(planner.field)
        _obs_finish(args)
    config = _planner_config(args, "restore")
    config.update(
        epochs=args.epochs,
        warm=args.warm,
        disaster_radius=radius,
        restore_mode=os.environ.get("REPRO_RESTORE", "warm"),
    )
    _ledger_pend(
        args, "restore", f"restore-{args.method}-k{args.k}", config,
        sample_sink=getattr(args, "sample", None),
        flight_record=getattr(args, "flight_record", None),
    )
    return 0


def _cmd_lifetime(args: argparse.Namespace) -> int:
    from repro.sim import BatteryConfig, simulate_lifetime

    planner = DecorPlanner(
        Rect.square(args.side),
        SensorSpec(args.rs, args.rc),
        n_points=args.points,
        seed=args.seed,
    )
    result = planner.deploy(args.k, method="voronoi")
    config = BatteryConfig(capacity=args.capacity)
    on = simulate_lifetime(result.coverage, config, policy="always-on")
    rot = simulate_lifetime(result.coverage, config, policy="shift-rotation")
    print(f"k={args.k} deployment of {result.total_alive} nodes")
    print(f"always-on lifetime : {on.lifetime:g}")
    print(f"shift rotation     : {rot.lifetime:g} "
          f"({rot.n_shifts} shifts, {rot.lifetime / on.lifetime:.1f}x)")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.obs.replay import load_stream, validate_stream, verify_stream

    records = load_stream(args.recording)
    stats = validate_stream(records)
    print(
        f"{args.recording}: {stats['n_records']} records, "
        f"{stats['n_runs']} run blocks, {stats['n_events']} events"
    )
    kinds = ", ".join(f"{k}={v}" for k, v in stats["kinds"].items())
    if kinds:
        print(f"event kinds : {kinds}")
    if args.timeline:
        from repro.viz import save_svg
        from repro.viz.timeline import svg_timeline

        save_svg(args.timeline, svg_timeline(records, run=args.run))
        print(f"wrote {args.timeline}")
    if args.no_verify:
        print("schema      : valid (replay verification skipped)")
        return 0
    if not stats["has_header"]:
        print("schema      : valid (no header; stream is not replayable)")
        return 0
    report = verify_stream(records)
    if report.matches:
        print(
            f"replay      : {report.n_replayed} records reproduced "
            "byte-identically"
        )
        return 0
    print(f"replay MISMATCH at record {report.first_divergence}:",
          file=sys.stderr)
    print(report.detail, file=sys.stderr)
    return 1


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.export import (
        ExpositionServer,
        load_registry,
        parse_exposition,
        prometheus_exposition,
    )

    if args.obs_command == "serve":
        if args.once:
            print(prometheus_exposition(load_registry(args.source)), end="")
            return 0
        server = ExpositionServer(
            lambda: load_registry(args.source),
            host=args.host, port=args.port,
        ).start()
        print(f"serving {args.source} at {server.url} (ctrl-c to stop)")
        try:
            server.wait()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            server.stop()
        return 0
    if args.obs_command == "scrape":
        import urllib.request

        with urllib.request.urlopen(args.url) as resp:  # noqa: S310
            text = resp.read().decode("utf-8")
        parsed = parse_exposition(text)
        print(
            f"{args.url}: valid exposition — {len(parsed['samples'])} "
            f"samples across {len(parsed['families'])} metric families"
        )
        return 0
    if args.obs_command == "summarize":
        if args.diff:
            if len(args.source) != 2:
                raise ConfigurationError(
                    "summarize --diff takes exactly two PATH arguments, "
                    f"got {len(args.source)}"
                )
            print(_summarize_sink_diff(*args.source), end="")
            return 0
        if len(args.source) != 1:
            raise ConfigurationError(
                "summarize takes one PATH (use --diff to compare two)"
            )
        print(_summarize_export(args.source[0]), end="")
        return 0
    raise AssertionError("unreachable")  # pragma: no cover


def _summarize_export(source: str) -> str:
    """Pretty-print any export the CLI writes (metrics/trace/samples)."""
    import json as _json

    from repro.experiments.summary import summarize_trace
    from repro.obs.top import load_rows, series_table

    text = open(source, encoding="utf-8").read()
    doc: dict | None = None
    first: dict | None = None
    try:
        whole = _json.loads(text) if text.strip() else None
        if isinstance(whole, dict):
            doc = whole
    except _json.JSONDecodeError:
        pass
    if doc is None:
        first_line = text.lstrip().splitlines()[0] if text.strip() else ""
        try:
            obj = _json.loads(first_line) if first_line else None
            if isinstance(obj, dict):
                first = obj
        except _json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{source}: not a JSON/JSONL export: {exc}"
            )
    lines: list[str] = []
    if doc is not None and doc.get("type") in ("header", "sample") or (
        first is not None and first.get("type") in ("header", "sample")
    ):
        rows = load_rows(source)
        table = series_table(rows)
        lines.append(f"{source}: {len(rows)} sample rows, "
                     f"{len(table)} series")
        for key in sorted(
            table, key=lambda k: (not k.startswith("health_"), k)
        ):
            pts = table[key]
            lines.append(
                f"  {key}: {len(pts)} points, "
                f"first {pts[0][1]:g} -> last {pts[-1][1]:g}"
            )
    elif doc is not None and "type" not in doc:
        lines.append(f"{source}: metrics dump, {len(doc)} metrics")
        lines.extend(_summarize_metrics_doc(doc))
    else:
        summary = summarize_trace(source)
        lines.append(f"{source}: trace export")
        lines.append(summary.format())
    return "\n".join(lines) + "\n"


def _summarize_metrics_doc(doc: dict) -> list[str]:
    """Top counters and histogram quantiles from an as_dict metrics dump."""
    from repro.obs.export import registry_from_metrics_json
    from repro.obs.metrics import Histogram

    registry = registry_from_metrics_json(doc)
    counters: list[tuple[float, str]] = []
    hists: list[tuple[str, Histogram]] = []
    for name, labels, kind, payload in registry.dump_state():
        key = name + (
            "{" + ",".join(f"{k}={v}" for k, v in labels) + "}" if labels
            else ""
        )
        if kind == "counter":
            counters.append((float(payload["value"]), key))
        elif kind == "histogram":
            hists.append((key, registry.histogram(name, **dict(labels))))
    out: list[str] = []
    if counters:
        out.append("  top counters:")
        for value, key in sorted(counters, reverse=True)[:10]:
            out.append(f"    {key}: {value:g}")
    if hists:
        out.append("  histograms (p50/p95/p99):")
        for key, hist in hists:
            out.append(
                f"    {key}: n={hist.count} mean={hist.mean:g} "
                f"p50={hist.quantile(0.5):g} p95={hist.quantile(0.95):g} "
                f"p99={hist.quantile(0.99):g}"
            )
    return out


def _summarize_sink_diff(path_a: str, path_b: str) -> str:
    """Compare two ``--sample`` sinks side by side.

    Aggregates each sink into the ledger's counter/gauge/histogram
    sections and renders their delta with the same renderer ``decor runs
    diff`` uses, then adds what flat sections cannot express: gauge
    trajectories (first -> last reading) and histogram quantile shifts.
    """
    from repro.obs.export import _split_series_key, registry_from_samples
    from repro.obs.ledger import (
        diff_sections,
        render_sections,
        sections_from_sample_rows,
    )
    from repro.obs.top import load_rows, series_table

    rows_a = load_rows(path_a)
    rows_b = load_rows(path_b)
    sections_a = sections_from_sample_rows(rows_a)
    sections_b = sections_from_sample_rows(rows_b)
    lines = [
        f"a: {path_a} ({len(rows_a)} sample rows)",
        f"b: {path_b} ({len(rows_b)} sample rows)",
    ]
    delta = diff_sections(sections_a, sections_b)
    if delta:
        lines.append("aggregate differences:")
        lines.extend(render_sections(delta, "a", "b"))
    else:
        lines.append("aggregate sections: identical")
    table_a = series_table(rows_a)
    table_b = series_table(rows_b)
    gauge_keys = sorted(set(sections_a["gauges"]) | set(sections_b["gauges"]))
    if gauge_keys:
        lines.append("gauge trajectories (first -> last):")
        for key in gauge_keys:
            lines.append(
                f"  {key}: a {_trajectory(table_a.get(key))}, "
                f"b {_trajectory(table_b.get(key))}"
            )
    hist_keys = sorted(
        set(sections_a["histograms"]) | set(sections_b["histograms"])
    )
    if hist_keys:
        reg_a = registry_from_samples(rows_a)
        reg_b = registry_from_samples(rows_b)
        lines.append("histogram quantiles (p50/p95/p99):")
        for key in hist_keys:
            name, labels = _split_series_key(key)
            lines.append(
                f"  {key}: a {_quantile_summary(reg_a, name, labels)}, "
                f"b {_quantile_summary(reg_b, name, labels)}"
            )
    return "\n".join(lines) + "\n"


def _trajectory(points: list[tuple[float, float]] | None) -> str:
    if not points:
        return "absent"
    return f"{points[0][1]:g} -> {points[-1][1]:g}"


def _quantile_summary(registry, name: str, labels: dict) -> str:
    hist = registry.histogram(name, **labels)
    if hist.count == 0:
        return "empty"
    return (
        f"n={hist.count} p50={hist.quantile(0.5):g} "
        f"p95={hist.quantile(0.95):g} p99={hist.quantile(0.99):g}"
    )


def _ledger_store(args: argparse.Namespace):
    """The store ``decor runs`` queries: --ledger, the live one, or default."""
    from repro.obs.ledger import DEFAULT_LEDGER_ROOT, LedgerStore

    if getattr(args, "ledger", None):
        return LedgerStore(args.ledger)
    if LEDGER.enabled and LEDGER.store is not None:
        return LEDGER.store
    return LedgerStore(DEFAULT_LEDGER_ROOT)


def _cmd_runs(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.ledger import (
        RegressOptions,
        baseline_rows,
        diff_is_clean,
        diff_rows,
        render_diff,
        run_detectors,
    )

    store = _ledger_store(args)
    if args.runs_command == "list":
        rows = store.rows()
        if args.kind:
            rows = [r for r in rows if r.get("kind") == args.kind]
        if args.label:
            rows = [r for r in rows if r.get("label") == args.label]
        shown = rows[-args.limit:] if args.limit and args.limit > 0 else rows
        if not shown:
            print(f"no matching runs recorded under {store.root}")
            return 0
        for row in shown:
            wall = sum(row.get("wall", {}).values())
            print(
                f"{row.get('run_id')}  {row.get('ts')}  "
                f"{row.get('kind'):>8}  {str(row.get('label')):<24}  "
                f"wall={wall:.2f}s"
            )
        if len(rows) > len(shown):
            print(f"({len(rows) - len(shown)} older runs not shown)")
        return 0
    if args.runs_command == "show":
        print(_json.dumps(store.resolve(args.ref), indent=2, sort_keys=True))
        return 0
    if args.runs_command == "diff":
        diff = diff_rows(
            store.resolve(args.ref_a), store.resolve(args.ref_b)
        )
        print(
            render_diff(diff, label_a=args.ref_a, label_b=args.ref_b),
            end="",
        )
        return 1 if args.exit_code and not diff_is_clean(diff) else 0
    if args.runs_command == "regress":
        run = store.resolve(args.ref)
        baseline = baseline_rows(store.rows(), run, window=args.window)
        options = RegressOptions(
            tolerance=args.tolerance,
            wall_tolerance=args.wall_tolerance,
            detectors=tuple(args.detector) if args.detector else None,
        )
        findings = run_detectors(run, baseline, options)
        print(
            f"{run.get('run_id')}: {len(baseline)} baseline run(s), "
            f"{len(findings)} finding(s)"
        )
        for finding in findings:
            print("  " + finding.format())
        return 1 if findings else 0
    raise AssertionError("unreachable")  # pragma: no cover


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.top import run_top

    run_top(
        args.source,
        follow=args.follow,
        interval=args.interval,
        frames=args.frames,
        width=args.width,
        limit=args.limit,
        prefix=args.prefix,
    )
    return 0


def _cmd_gallery(_: argparse.Namespace) -> int:
    region = Rect.square(100.0)
    spec = SensorSpec(4.0, 8.0)
    planner = DecorPlanner(region, spec, n_points=2000, seed=0)
    print(render_points(region, planner.field_points,
                        title="Figure 4: a field approximated with 2000 Halton points"))
    result = planner.deploy(k=1, method="grid", cell_size=5.0)
    print()
    print(render_deployment(region, planner.field_points,
                            result.deployment.alive_positions(),
                            title="Figure 5: an example DECOR deployment (grid, k=1)"))
    event = area_failure(result.deployment, region.center, 24.0)
    survivor = result.deployment.copy()
    survivor.fail(event.node_ids)
    print()
    print(render_coverage(region, survivor.alive_positions(), spec.rs, k=1,
                          title="Figure 6: an uncovered area ('!' = uncovered)"))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.checks.aggregate import (
        overall_ok,
        render_json,
        render_sarif,
        render_text,
        run_gates,
    )

    results = run_gates(skip=args.skip)
    if args.output == "json":
        print(render_json(results))
    elif args.output == "sarif":
        print(render_sarif(results))
    else:
        print(render_text(results))
    return 0 if overall_ok(results) else 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "deploy":
        return _cmd_deploy(args)
    if args.command == "summary":
        return _cmd_summary(args)
    if args.command == "restore":
        return _cmd_restore(args)
    if args.command == "lifetime":
        return _cmd_lifetime(args)
    if args.command == "gallery":
        return _cmd_gallery(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "runs":
        return _cmd_runs(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "check":
        return _cmd_check(args)
    raise AssertionError("unreachable")  # pragma: no cover


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    raw = list(sys.argv[1:]) if argv is None else list(argv)
    parser = build_parser()
    args = parser.parse_args(raw)
    try:
        path = getattr(args, "flight_record", None)
        if path:
            header = ("cli", {"argv": _flightrec_argv(raw)})
            with FREC.session(path, header=header) as session:
                code = _dispatch(args)
            print(f"wrote {path} ({len(session.records)} flight records)")
            _ledger_finish(args)
            return code
        code = _dispatch(args)
        _ledger_finish(args)
        return code
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
