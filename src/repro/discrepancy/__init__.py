"""Low-discrepancy point generation and discrepancy measurement.

The paper's key representational trick (§3.2) is to approximate the
continuous monitored area by a finite point set whose *discrepancy* is low —
i.e. every axis-aligned box contains a share of points proportional to its
area.  The uncovered region is then represented implicitly as the subset of
points not yet k-covered.

Implemented from scratch:

* :func:`~repro.discrepancy.vdc.van_der_corput` — radical-inverse sequence,
  the 1-D building block.
* :func:`~repro.discrepancy.halton.halton` — O(log^d N / N) discrepancy.
* :func:`~repro.discrepancy.hammersley.hammersley` — O(log^{d-1} N / N).
* :func:`~repro.discrepancy.random_points.uniform_random` and
  :func:`~repro.discrepancy.random_points.jittered_lattice` /
  :func:`~repro.discrepancy.random_points.regular_lattice` baselines.
* :mod:`~repro.discrepancy.star_discrepancy` — exact star discrepancy for
  small sets and a Monte-Carlo lower-bound estimator for large ones.
* :func:`~repro.discrepancy.sequences.field_points` — a registry-driven
  factory producing a named point set scaled onto a field rectangle.
"""

from repro.discrepancy.vdc import van_der_corput
from repro.discrepancy.halton import halton
from repro.discrepancy.hammersley import hammersley
from repro.discrepancy.random_points import (
    uniform_random,
    regular_lattice,
    jittered_lattice,
)
from repro.discrepancy.star_discrepancy import (
    star_discrepancy_exact,
    star_discrepancy_estimate,
)
from repro.discrepancy.randomization import cranley_patterson_rotation
from repro.discrepancy.sequences import (
    GENERATORS,
    field_points,
    unit_points,
)

__all__ = [
    "van_der_corput",
    "halton",
    "hammersley",
    "uniform_random",
    "regular_lattice",
    "jittered_lattice",
    "star_discrepancy_exact",
    "star_discrepancy_estimate",
    "GENERATORS",
    "field_points",
    "unit_points",
    "cranley_patterson_rotation",
]
