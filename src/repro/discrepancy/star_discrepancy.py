"""Star discrepancy of planar point sets.

The star discrepancy of a point set ``P`` in the unit square is::

    D*(P) = sup over boxes B = [0, x) x [0, y)  of  | |P ∩ B| / N  -  area(B) |

It quantifies how well the discrete set stands in for the continuous area —
the exact property the paper leans on when it replaces the uncovered region
by uncovered Halton points (§3.2).

Two evaluators are provided:

* :func:`star_discrepancy_exact` — an ``O(N^2 log N)`` exact algorithm over
  the critical-box grid induced by the point coordinates (feasible for the
  test sizes, ``N <= ~1024``).
* :func:`star_discrepancy_estimate` — a Monte-Carlo lower bound used for the
  2000-point paper-scale sets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.points import as_points

__all__ = ["star_discrepancy_exact", "star_discrepancy_estimate"]


def _validate_unit(points: np.ndarray) -> np.ndarray:
    pts = as_points(points)
    if pts.size and (pts.min() < 0.0 or pts.max() > 1.0):
        raise ConfigurationError("star discrepancy expects points in [0, 1]^2")
    return pts


def star_discrepancy_exact(points: np.ndarray) -> float:
    """Exact star discrepancy of a planar point set in the unit square.

    The supremum over anchored boxes is attained with box edges at point
    coordinates (closed count) or just below them (open count), so it
    suffices to scan the ``(N+1)^2`` critical grid.  For each candidate
    x-edge we sort the y-coordinates of the points to its left and sweep
    the candidate y-edges with a prefix count — ``O(N^2 log N)`` total,
    fully vectorised per x-edge.
    """
    pts = _validate_unit(points)
    n = pts.shape[0]
    if n == 0:
        # the empty set misses the whole square
        return 1.0
    xs = np.unique(np.concatenate([pts[:, 0], [1.0]]))
    y_grid = np.unique(np.concatenate([pts[:, 1], [1.0]]))
    best = 0.0
    order = np.argsort(pts[:, 0], kind="stable")
    sorted_x = pts[order, 0]
    sorted_y = pts[order, 1]
    for x in xs:
        # points strictly left of x (open box) and up to x (closed box)
        n_open = int(np.searchsorted(sorted_x, x, side="left"))
        n_closed = int(np.searchsorted(sorted_x, x, side="right"))
        ys_open = np.sort(sorted_y[:n_open])
        ys_closed = np.sort(sorted_y[:n_closed])
        # counts below each candidate y edge, open/closed in y as well
        area = x * y_grid
        open_counts = np.searchsorted(ys_open, y_grid, side="left")
        closed_counts = np.searchsorted(ys_closed, y_grid, side="right")
        # D* considers boxes [0,x) x [0,y); the sup is approached from both
        # sides, giving the classic max over (closed count - area) and
        # (area - open count).
        over = np.max(closed_counts / n - area)
        under = np.max(area - open_counts / n)
        best = max(best, float(over), float(under))
    return best


def star_discrepancy_estimate(
    points: np.ndarray,
    rng: np.random.Generator,
    n_probes: int = 4096,
) -> float:
    """Monte-Carlo lower bound on the star discrepancy.

    Samples ``n_probes`` random anchored boxes plus the critical boxes
    through a random subset of points; returns the largest deviation seen.
    Always a lower bound on the true ``D*``; adequate for *comparing*
    generators (the orderings random > jittered > Halton ~ Hammersley are
    robust to estimator noise at the probe counts used here).
    """
    pts = _validate_unit(points)
    n = pts.shape[0]
    if n == 0:
        return 1.0
    if n_probes < 1:
        raise ConfigurationError(f"need at least one probe, got {n_probes}")
    # random boxes ∪ boxes anchored at sampled point coordinates
    corners = rng.random((n_probes, 2))
    take = min(n, max(1, n_probes // 4))
    sel = rng.choice(n, size=take, replace=False)
    corners = np.vstack([corners, np.nextafter(pts[sel], 2.0), pts[sel]])
    xs = np.sort(pts[:, 0])
    best = 0.0
    # chunk to bound memory: (probes x n) boolean products
    chunk = max(1, int(2**22 // max(n, 1)))
    for lo in range(0, corners.shape[0], chunk):
        c = corners[lo : lo + chunk]
        inside = (pts[None, :, 0] < c[:, None, 0]) & (pts[None, :, 1] < c[:, None, 1])
        frac = inside.sum(axis=1) / n
        area = c[:, 0] * c[:, 1]
        best = max(best, float(np.max(np.abs(frac - area), initial=0.0)))
    del xs
    return best
