"""Van der Corput radical-inverse sequences.

The van der Corput sequence in base ``b`` maps the integer ``i`` to the
number obtained by reflecting ``i``'s base-``b`` digits about the radix
point: ``i = sum d_j b^j  ->  phi_b(i) = sum d_j b^(-j-1)``.  It is the 1-D
low-discrepancy building block used by both the Halton and Hammersley
constructions (paper §3.2).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["van_der_corput", "radical_inverse"]


def radical_inverse(indices: np.ndarray, base: int) -> np.ndarray:
    """Radical inverse ``phi_base`` of each non-negative integer index.

    Fully vectorised: the digit loop runs ``O(log_base(max_index))`` times
    over the whole array instead of once per element.

    Parameters
    ----------
    indices:
        Array of non-negative integers.
    base:
        Integer base ``>= 2``.

    Returns
    -------
    numpy.ndarray
        Float64 array of values in ``[0, 1)``.
    """
    if base < 2:
        raise ConfigurationError(f"van der Corput base must be >= 2, got {base}")
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size and int(idx.min()) < 0:
        raise ConfigurationError("van der Corput indices must be non-negative")
    remaining = idx.copy()
    result = np.zeros(idx.shape, dtype=np.float64)
    inv = 1.0 / base
    scale = inv
    while np.any(remaining > 0):
        digits = remaining % base
        result += digits * scale
        remaining //= base
        scale *= inv
    return result


def van_der_corput(n: int, base: int = 2, start: int = 0) -> np.ndarray:
    """First ``n`` van der Corput values in the given base.

    Parameters
    ----------
    n:
        Number of values.
    base:
        Sequence base, ``>= 2``.
    start:
        Index of the first element (``start=1`` skips the initial 0, which
        some deployments prefer so no field point sits exactly on the
        region corner).

    Returns
    -------
    numpy.ndarray
        ``(n,)`` float64 array with entries in ``[0, 1)``.
    """
    if n < 0:
        raise ConfigurationError(f"cannot generate {n} points")
    return radical_inverse(np.arange(start, start + n, dtype=np.int64), base)
