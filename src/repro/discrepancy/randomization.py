"""Randomised quasi-Monte-Carlo point sets.

Deterministic low-discrepancy constructions (Halton, Hammersley) produce the
same field every run, while the paper averages "5 runs, each one on a
randomly generated field".  The classical reconciliation is the
Cranley-Patterson rotation: shifting every point by a common random vector
modulo 1 yields a *different* point set per seed whose star discrepancy is
within a constant of the original's — randomness without giving up the
low-discrepancy guarantee the method rests on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.points import as_points

__all__ = ["cranley_patterson_rotation"]


def cranley_patterson_rotation(
    unit_points: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Random toroidal shift of a unit-square point set.

    Parameters
    ----------
    unit_points:
        ``(n, d>=1)`` points in ``[0, 1)``; for this library ``d = 2``.
    rng:
        Source of the single shift vector.

    Returns
    -------
    numpy.ndarray
        The shifted points, ``(p + u) mod 1`` with ``u ~ U[0, 1)^d``.
    """
    pts = as_points(unit_points)
    if pts.size and (pts.min() < 0.0 or pts.max() >= 1.0 + 1e-12):
        raise ConfigurationError(
            "Cranley-Patterson rotation expects points in [0, 1)"
        )
    shift = rng.random(pts.shape[1])
    out = pts + shift
    np.mod(out, 1.0, out=out)
    return out
