"""Baseline point sets: uniform random, regular lattice, jittered lattice.

These are the comparison points for the paper's discrepancy-theory argument:
a random set of ``N`` points has discrepancy ``O(sqrt(log log N / N))``,
markedly worse than Halton/Hammersley, which translates into a worse implicit
representation of the uncovered area (ablation 1 in DESIGN.md).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["uniform_random", "regular_lattice", "jittered_lattice"]


def uniform_random(n: int, rng: np.random.Generator, dim: int = 2) -> np.ndarray:
    """``n`` i.i.d. uniform points in ``[0, 1)^dim``."""
    if n < 0:
        raise ConfigurationError(f"cannot generate {n} points")
    if dim < 1:
        raise ConfigurationError(f"dimension must be >= 1, got {dim}")
    return rng.random((n, dim))


def _lattice_shape(n: int) -> tuple[int, int]:
    """Rows/cols of the most-square lattice with at least ``n`` sites."""
    side = int(math.isqrt(n))
    if side * side >= n:
        return side, side
    if side * (side + 1) >= n:
        return side, side + 1
    return side + 1, side + 1


def regular_lattice(n: int) -> np.ndarray:
    """A centered regular grid of (at least) ``n`` points in the unit square.

    The grid is the most-square ``r x c`` arrangement with ``r * c >= n``,
    truncated to exactly ``n`` points in row-major order.  Cell-centered so
    no point lies on the boundary.
    """
    if n < 0:
        raise ConfigurationError(f"cannot generate {n} points")
    if n == 0:
        return np.empty((0, 2), dtype=np.float64)
    rows, cols = _lattice_shape(n)
    ys = (np.arange(rows) + 0.5) / rows
    xs = (np.arange(cols) + 0.5) / cols
    gx, gy = np.meshgrid(xs, ys)
    pts = np.column_stack([gx.ravel(), gy.ravel()])
    return pts[:n]


def jittered_lattice(n: int, rng: np.random.Generator) -> np.ndarray:
    """Stratified sampling: one uniform point per lattice cell.

    Discrepancy between random and Halton — a useful middle baseline for the
    point-set ablation.
    """
    if n < 0:
        raise ConfigurationError(f"cannot generate {n} points")
    if n == 0:
        return np.empty((0, 2), dtype=np.float64)
    rows, cols = _lattice_shape(n)
    ys = (np.arange(rows)[:, None] + rng.random((rows, cols))) / rows
    xs = (np.arange(cols)[None, :] + rng.random((rows, cols))) / cols
    pts = np.column_stack([xs.ravel(), ys.ravel()])
    return pts[:n]
