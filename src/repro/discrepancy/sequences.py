"""Named point-set generators and field-approximation factory.

The experiment harness refers to point generators by name ("halton",
"hammersley", "random", "lattice", "jittered"); :func:`field_points` turns a
name into a concrete ``(n, 2)`` approximation of a field rectangle, matching
the paper's "field approximated with 2000 Halton points" setup (§4, Fig. 4).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.discrepancy.halton import halton
from repro.discrepancy.hammersley import hammersley
from repro.discrepancy.random_points import (
    jittered_lattice,
    regular_lattice,
    uniform_random,
)
from repro.geometry.region import Rect

__all__ = ["GENERATORS", "unit_points", "field_points"]

#: name -> generator(n, rng) producing unit-square points.  Deterministic
#: generators ignore the rng argument.
GENERATORS: dict[str, Callable[[int, np.random.Generator], np.ndarray]] = {
    "halton": lambda n, rng: halton(n),
    "hammersley": lambda n, rng: hammersley(n),
    "random": lambda n, rng: uniform_random(n, rng),
    "lattice": lambda n, rng: regular_lattice(n),
    "jittered": lambda n, rng: jittered_lattice(n, rng),
}


def unit_points(
    generator: str, n: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """``n`` unit-square points from the named generator.

    Parameters
    ----------
    generator:
        One of :data:`GENERATORS` (case-insensitive).
    n:
        Number of points.
    rng:
        Required for the stochastic generators ("random", "jittered").
    """
    key = generator.lower()
    try:
        fn = GENERATORS[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown point generator {generator!r}; known: {sorted(GENERATORS)}"
        ) from None
    if key in ("random", "jittered") and rng is None:
        raise ConfigurationError(f"generator {key!r} requires an rng")
    return fn(n, rng if rng is not None else np.random.default_rng(0))


def field_points(
    region: Rect,
    n: int,
    generator: str = "halton",
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Approximate ``region`` with ``n`` points from the named generator.

    This is the paper's field approximation step: the returned points are the
    discrete stand-in for the continuous area, and coverage of the area is
    henceforth identified with coverage of these points.
    """
    return region.scale_unit_points(unit_points(generator, n, rng))
