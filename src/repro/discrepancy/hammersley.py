"""Hammersley low-discrepancy point sets.

The ``N``-point Hammersley set in dimension ``d`` uses ``i/N`` as the first
coordinate and van der Corput sequences in the first ``d - 1`` prime bases
for the rest.  Because the first coordinate is an exact equidistribution, the
star discrepancy improves to ``O(log^{d-1} N / N)`` (paper §3.2) — at the
price of having to fix ``N`` in advance (it is a point *set*, not a
sequence).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.discrepancy.halton import PRIMES
from repro.discrepancy.vdc import radical_inverse

__all__ = ["hammersley"]


def hammersley(
    n: int,
    dim: int = 2,
    *,
    bases: tuple[int, ...] | None = None,
    centered: bool = True,
) -> np.ndarray:
    """The ``n``-point Hammersley set in ``dim`` dimensions.

    Parameters
    ----------
    n:
        Set size (must be fixed up front; extending requires regeneration).
    dim:
        Dimension, ``>= 1``.
    bases:
        Bases for dimensions ``2..dim``; defaults to the first ``dim - 1``
        primes.
    centered:
        If true the first coordinate is ``(i + 0.5) / n`` instead of
        ``i / n``, avoiding a point column exactly on the region edge.

    Returns
    -------
    numpy.ndarray
        ``(n, dim)`` float64 array with entries in ``[0, 1)``.
    """
    if dim < 1:
        raise ConfigurationError(f"dimension must be >= 1, got {dim}")
    if n < 0:
        raise ConfigurationError(f"cannot generate {n} points")
    if bases is None:
        if dim - 1 > len(PRIMES):
            raise ConfigurationError(
                f"default bases support up to {len(PRIMES) + 1} dimensions; pass bases="
            )
        bases = PRIMES[: dim - 1]
    if len(bases) != dim - 1:
        raise ConfigurationError(f"need {dim - 1} bases, got {len(bases)}")
    if len(set(bases)) != len(bases):
        raise ConfigurationError(f"Hammersley bases must be distinct, got {bases}")
    idx = np.arange(n, dtype=np.int64)
    out = np.empty((n, dim), dtype=np.float64)
    if n:
        out[:, 0] = (idx + (0.5 if centered else 0.0)) / n
    for j, b in enumerate(bases):
        out[:, j + 1] = radical_inverse(idx, b)
    return out
