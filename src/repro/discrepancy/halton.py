"""Halton low-discrepancy sequences.

The ``d``-dimensional Halton sequence pairs van der Corput sequences in the
first ``d`` (pairwise coprime, conventionally prime) bases:
``x_i = (phi_{b_1}(i), ..., phi_{b_d}(i))``.  Its star discrepancy is
``O(log^d N / N)`` — the bound quoted in the paper (§3.2) — versus
``O(sqrt(log log N / N))`` for random points.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.discrepancy.vdc import radical_inverse

__all__ = ["halton", "PRIMES"]

#: First few primes, the default Halton bases per dimension.
PRIMES: tuple[int, ...] = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29)


def halton(
    n: int,
    dim: int = 2,
    *,
    bases: tuple[int, ...] | None = None,
    start: int = 1,
) -> np.ndarray:
    """First ``n`` points of the ``dim``-dimensional Halton sequence.

    Parameters
    ----------
    n:
        Number of points.
    dim:
        Dimension (the sensor field uses ``dim=2``).
    bases:
        Per-dimension bases; defaults to the first ``dim`` primes.  They must
        be pairwise distinct and ``>= 2``.
    start:
        Index of the first sequence element.  Defaults to 1 so the degenerate
        all-zero point at index 0 is skipped.

    Returns
    -------
    numpy.ndarray
        ``(n, dim)`` float64 array with entries in ``[0, 1)``.
    """
    if dim < 1:
        raise ConfigurationError(f"dimension must be >= 1, got {dim}")
    if bases is None:
        if dim > len(PRIMES):
            raise ConfigurationError(
                f"default bases support up to {len(PRIMES)} dimensions; pass bases="
            )
        bases = PRIMES[:dim]
    if len(bases) != dim:
        raise ConfigurationError(
            f"need {dim} bases, got {len(bases)}"
        )
    if len(set(bases)) != len(bases):
        raise ConfigurationError(f"Halton bases must be distinct, got {bases}")
    if n < 0:
        raise ConfigurationError(f"cannot generate {n} points")
    idx = np.arange(start, start + n, dtype=np.int64)
    out = np.empty((n, dim), dtype=np.float64)
    for j, b in enumerate(bases):
        out[:, j] = radical_inverse(idx, b)
    return out
