"""Sensor-network model: specs, deployments, coverage, failures, reliability.

Implements the paper's system model (§2):

* :class:`~repro.network.spec.SensorSpec` — homogeneous sensing radius ``rs``
  and communication radius ``rc`` with the paper's sole assumption
  ``rs <= rc`` enforced.
* :class:`~repro.network.deployment.Deployment` — a growing set of node
  positions with an alive/failed mask (amortised O(1) appends).
* :class:`~repro.network.coverage.CoverageState` — per-field-point coverage
  counts ``k_p``, maintained incrementally as nodes are added, removed or
  fail.
* :mod:`~repro.network.connectivity` — communication graph and the paper's
  k-connectivity corollary (``rc >= 2 rs`` + k-coverage => k-connectivity).
* :mod:`~repro.network.reliability` — the ``1 - q^k`` reliability algebra
  and the user-requirement-to-k translation (§2.1).
* :mod:`~repro.network.failures` — random, disc-area and correlated failure
  models (§2.1).
"""

from repro.network.spec import SensorSpec
from repro.network.deployment import Deployment
from repro.network.coverage import CoverageState
from repro.network.connectivity import (
    communication_graph,
    is_connected,
    node_connectivity_at_least,
)
from repro.network.reliability import (
    point_reliability,
    required_k,
    expected_covered_fraction_after_failures,
)
from repro.network.failures import (
    FailureEvent,
    random_failures,
    area_failure,
    correlated_cluster_failures,
    apply_failure,
)
from repro.network.heterogeneous import SensorType, MixedDeployment
from repro.network.relays import RelayPlan, connect_components, relays_for_segment
from repro.network.io import (
    deployment_to_json,
    deployment_from_json,
    deployment_to_csv,
    field_to_json,
    field_from_json,
)

__all__ = [
    "SensorSpec",
    "Deployment",
    "CoverageState",
    "communication_graph",
    "is_connected",
    "node_connectivity_at_least",
    "point_reliability",
    "required_k",
    "expected_covered_fraction_after_failures",
    "FailureEvent",
    "random_failures",
    "area_failure",
    "correlated_cluster_failures",
    "apply_failure",
    "SensorType",
    "MixedDeployment",
    "RelayPlan",
    "connect_components",
    "relays_for_segment",
    "deployment_to_json",
    "deployment_from_json",
    "deployment_to_csv",
    "field_to_json",
    "field_from_json",
]
