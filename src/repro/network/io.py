"""Persistence of fields and deployments (JSON round-trip, CSV export).

Experiments and field deployments are cheap to regenerate but expensive to
re-derive exactly (seeds, setup versions); serialising the concrete
artifacts makes runs auditable and lets external tools (GIS, plotting)
consume them.
"""

from __future__ import annotations

import csv
import io as _io
import json

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.points import as_points
from repro.network.deployment import Deployment
from repro.network.spec import SensorSpec

__all__ = [
    "deployment_to_json",
    "deployment_from_json",
    "deployment_to_csv",
    "field_to_json",
    "field_from_json",
]

_FORMAT_VERSION = 1


def deployment_to_json(
    deployment: Deployment, spec: SensorSpec | None = None, **metadata
) -> str:
    """Serialise a deployment (positions + alive mask) to JSON.

    ``spec`` and arbitrary scalar ``metadata`` ride along for provenance.
    """
    payload = {
        "format": "repro.deployment",
        "version": _FORMAT_VERSION,
        "positions": deployment.positions.tolist(),
        "alive": deployment.alive_mask.tolist(),
        "metadata": dict(metadata),
    }
    if spec is not None:
        payload["spec"] = {
            "sensing_radius": spec.sensing_radius,
            "communication_radius": spec.communication_radius,
        }
    return json.dumps(payload, indent=2, sort_keys=True)


def deployment_from_json(text: str) -> tuple[Deployment, SensorSpec | None, dict]:
    """Inverse of :func:`deployment_to_json`.

    Returns
    -------
    tuple
        ``(deployment, spec_or_None, metadata)`` with node ids and the
        alive mask preserved exactly.
    """
    try:
        payload = json.loads(text)
        if payload.get("format") != "repro.deployment":
            raise ConfigurationError("not a repro deployment document")
        if payload.get("version") != _FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported deployment format version {payload.get('version')}"
            )
        positions = np.asarray(payload["positions"], dtype=float)
        alive = np.asarray(payload["alive"], dtype=bool)
        if positions.shape[0] != alive.shape[0]:
            raise ConfigurationError("positions/alive length mismatch")
        deployment = Deployment(positions) if len(positions) else Deployment()
        dead = np.nonzero(~alive)[0]
        if dead.size:
            deployment.fail(dead)
        spec = None
        if "spec" in payload:
            spec = SensorSpec(
                payload["spec"]["sensing_radius"],
                payload["spec"]["communication_radius"],
            )
        return deployment, spec, dict(payload.get("metadata", {}))
    except ConfigurationError:
        raise
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"malformed deployment JSON: {exc}") from exc


def deployment_to_csv(deployment: Deployment) -> str:
    """CSV export: ``node_id,x,y,alive`` rows."""
    buf = _io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["node_id", "x", "y", "alive"])
    positions = deployment.positions
    alive = deployment.alive_mask
    for nid in range(len(deployment)):
        writer.writerow(
            [nid, float(positions[nid, 0]), float(positions[nid, 1]), int(alive[nid])]
        )
    return buf.getvalue()


def field_to_json(field_points: np.ndarray, **metadata) -> str:
    """Serialise a field approximation (with provenance metadata)."""
    pts = as_points(field_points)
    return json.dumps(
        {
            "format": "repro.field",
            "version": _FORMAT_VERSION,
            "points": pts.tolist(),
            "metadata": dict(metadata),
        },
        indent=2,
        sort_keys=True,
    )


def field_from_json(text: str) -> tuple[np.ndarray, dict]:
    """Inverse of :func:`field_to_json`."""
    try:
        payload = json.loads(text)
        if payload.get("format") != "repro.field":
            raise ConfigurationError("not a repro field document")
        pts = as_points(np.asarray(payload["points"], dtype=float))
        return pts, dict(payload.get("metadata", {}))
    except ConfigurationError:
        raise
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"malformed field JSON: {exc}") from exc
