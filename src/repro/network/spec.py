"""Sensor device specification (paper §2, Figure 1).

Each sensor has a *sensing radius* ``rs`` (it covers the closed disc of
radius ``rs`` around its position) and a *communication radius* ``rc`` (its
1-hop neighbours are the nodes within ``rc``).  The paper's only structural
assumption is ``rs <= rc``; additionally, when ``rc >= 2 rs`` full coverage
implies connectivity (and k-coverage implies k-connectivity).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["SensorSpec"]


@dataclass(frozen=True)
class SensorSpec:
    """Homogeneous sensor parameters.

    Parameters
    ----------
    sensing_radius:
        Coverage radius ``rs`` (> 0).
    communication_radius:
        Radio range ``rc`` (>= ``rs``, per §2).

    Examples
    --------
    >>> spec = SensorSpec(sensing_radius=4.0, communication_radius=8.0)
    >>> spec.guarantees_connectivity
    True
    """

    sensing_radius: float
    communication_radius: float

    def __post_init__(self) -> None:
        if self.sensing_radius <= 0:
            raise ConfigurationError(
                f"sensing radius must be positive, got {self.sensing_radius}"
            )
        if self.communication_radius < self.sensing_radius:
            raise ConfigurationError(
                "the paper's model requires rs <= rc, got "
                f"rs={self.sensing_radius}, rc={self.communication_radius}"
            )

    @property
    def rs(self) -> float:
        """Alias for :attr:`sensing_radius` (paper notation)."""
        return self.sensing_radius

    @property
    def rc(self) -> float:
        """Alias for :attr:`communication_radius` (paper notation)."""
        return self.communication_radius

    @property
    def guarantees_connectivity(self) -> bool:
        """Whether ``rc >= 2 rs`` holds.

        Under this condition, full area coverage implies network
        connectivity, and k-coverage implies k-connectivity (§2, refs
        [19, 22, 23] of the paper).
        """
        return self.communication_radius >= 2.0 * self.sensing_radius

    def with_communication_radius(self, rc: float) -> "SensorSpec":
        """A copy with a different communication radius (Voronoi rc sweeps)."""
        return SensorSpec(self.sensing_radius, rc)
