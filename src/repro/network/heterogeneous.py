"""Heterogeneous sensor fleets (paper §2).

"In a heterogeneous network deployment, the sensing and coverage radii of
the sensors may vary, depending on the type of the sensors and on the
deployment conditions.  Our solution is designed to work under such a
setting, since the only assumption we make is that the sensing radius is
smaller than or equal to the communication radius."

This module models a *catalog* of sensor types (each with its own radii and
a unit cost) and deployments mixing them.  The matching placement algorithm
lives in :mod:`repro.core.mixed`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, GeometryError
from repro.geometry.points import as_point

__all__ = ["SensorType", "MixedDeployment"]


@dataclass(frozen=True)
class SensorType:
    """One entry of a heterogeneous sensor catalog.

    Parameters
    ----------
    name:
        Catalog key (unique within a deployment).
    sensing_radius, communication_radius:
        Per-type radii, ``0 < rs <= rc`` (the paper's single assumption).
    cost:
        Relative unit cost; the mixed greedy maximises benefit *per cost*.
    """

    name: str
    sensing_radius: float
    communication_radius: float
    cost: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("sensor type needs a name")
        if self.sensing_radius <= 0:
            raise ConfigurationError(
                f"sensing radius must be positive, got {self.sensing_radius}"
            )
        if self.communication_radius < self.sensing_radius:
            raise ConfigurationError(
                f"type {self.name!r}: rs <= rc required, got "
                f"rs={self.sensing_radius}, rc={self.communication_radius}"
            )
        if self.cost <= 0:
            raise ConfigurationError(f"cost must be positive, got {self.cost}")

    @property
    def rs(self) -> float:
        return self.sensing_radius

    @property
    def rc(self) -> float:
        return self.communication_radius


class MixedDeployment:
    """Node positions with a per-node sensor type.

    A thin sibling of :class:`~repro.network.deployment.Deployment` carrying
    the type index alongside each position; node ids are stable and failures
    flip the alive mask.
    """

    def __init__(self, types: tuple[SensorType, ...] | list[SensorType]):
        types = tuple(types)
        if not types:
            raise ConfigurationError("need at least one sensor type")
        names = [t.name for t in types]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate type names: {names}")
        self._types = types
        self._by_name = {t.name: i for i, t in enumerate(types)}
        self._positions: list[np.ndarray] = []
        self._type_idx: list[int] = []
        self._alive: list[bool] = []

    # ------------------------------------------------------------------
    @property
    def types(self) -> tuple[SensorType, ...]:
        return self._types

    def type_of(self, node_id: int) -> SensorType:
        self._check(node_id)
        return self._types[self._type_idx[node_id]]

    def __len__(self) -> int:
        return len(self._positions)

    @property
    def n_alive(self) -> int:
        return sum(self._alive)

    def _check(self, node_id: int) -> None:
        if not (0 <= node_id < len(self._positions)):
            raise GeometryError(f"unknown node id {node_id}")

    # ------------------------------------------------------------------
    def add(self, position: np.ndarray, type_name: str) -> int:
        """Append an alive node of the named type; returns its id."""
        try:
            t = self._by_name[type_name]
        except KeyError:
            raise ConfigurationError(
                f"unknown sensor type {type_name!r}; catalog: {sorted(self._by_name)}"
            ) from None
        self._positions.append(as_point(position))
        self._type_idx.append(t)
        self._alive.append(True)
        return len(self._positions) - 1

    def fail(self, node_ids) -> None:
        for nid in np.asarray(node_ids, dtype=np.intp).reshape(-1):
            self._check(int(nid))
            if not self._alive[nid]:
                raise GeometryError(f"node {nid} already failed")
            self._alive[int(nid)] = False

    def is_alive(self, node_id: int) -> bool:
        self._check(node_id)
        return self._alive[node_id]

    def position_of(self, node_id: int) -> np.ndarray:
        self._check(node_id)
        return self._positions[node_id].copy()

    def alive_ids(self) -> np.ndarray:
        return np.asarray(
            [i for i, a in enumerate(self._alive) if a], dtype=np.intp
        )

    def alive_positions(self) -> np.ndarray:
        ids = self.alive_ids()
        if ids.size == 0:
            return np.empty((0, 2))
        return np.vstack([self._positions[i] for i in ids])

    # ------------------------------------------------------------------
    def total_cost(self, *, alive_only: bool = True) -> float:
        """Summed catalog cost of the (alive) fleet."""
        total = 0.0
        for i in range(len(self._positions)):
            if alive_only and not self._alive[i]:
                continue
            total += self._types[self._type_idx[i]].cost
        return total

    def count_by_type(self, *, alive_only: bool = True) -> dict[str, int]:
        """Node count per type name."""
        out = {t.name: 0 for t in self._types}
        for i in range(len(self._positions)):
            if alive_only and not self._alive[i]:
                continue
            out[self._types[self._type_idx[i]].name] += 1
        return out
