"""Reliability algebra for k-covered points (paper §2.1).

With i.i.d. node failure probability ``q``, a point covered by ``k`` sensors
stays covered with probability ``1 - q^k``.  Inverting this gives the
coverage requirement ``k`` needed to meet a user reliability target — the
"user reliability requirement" the paper tunes DECOR with.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = [
    "point_reliability",
    "required_k",
    "expected_covered_fraction_after_failures",
]


def _check_prob(name: str, p: float) -> None:
    if not (0.0 <= p <= 1.0):
        raise ConfigurationError(f"{name} must be a probability in [0, 1], got {p}")


def point_reliability(k: int, q: float) -> float:
    """Probability that a k-covered point remains covered: ``1 - q**k``.

    Parameters
    ----------
    k:
        Coverage degree of the point (>= 0; ``k = 0`` means never covered).
    q:
        Per-node independent failure probability.
    """
    if k < 0:
        raise ConfigurationError(f"coverage degree must be >= 0, got {k}")
    _check_prob("failure probability q", q)
    return 1.0 - q**k


def required_k(target_reliability: float, q: float, k_max: int = 64) -> int:
    """Smallest ``k`` with ``1 - q**k >= target_reliability``.

    This is the translation from a user reliability requirement to the
    coverage degree DECOR should restore.

    Raises
    ------
    ConfigurationError
        If the target is unreachable (``q = 1`` with target > 0, or the
        needed ``k`` exceeds ``k_max``).
    """
    _check_prob("target reliability", target_reliability)
    _check_prob("failure probability q", q)
    if target_reliability == 0.0:
        return 1  # any coverage at all satisfies a zero target; paper's k >= 1
    if q == 0.0:
        return 1
    if q == 1.0:
        raise ConfigurationError("nodes that always fail cannot meet any target")
    # 1 - q^k >= t  <=>  k >= log(1 - t) / log(q)
    k = math.ceil(math.log(1.0 - target_reliability) / math.log(q) - 1e-12)
    k = max(k, 1)
    if k > k_max:
        raise ConfigurationError(
            f"reliability {target_reliability} with q={q} needs k={k} > k_max={k_max}"
        )
    return k


def expected_covered_fraction_after_failures(
    coverage_histogram, q: float
) -> float:
    """Expected fraction of points still 1-covered after i.i.d. failures.

    Parameters
    ----------
    coverage_histogram:
        ``hist[j]`` = number of field points covered exactly ``j`` times
        (e.g. :meth:`~repro.network.coverage.CoverageState.coverage_histogram`).
    q:
        Per-node failure probability.

    Notes
    -----
    A point covered ``j`` times survives with probability ``1 - q**j``
    (independent failures); the expectation sums over the histogram.
    """
    _check_prob("failure probability q", q)
    total = float(sum(coverage_histogram))
    if total == 0:
        raise ConfigurationError("empty coverage histogram")
    surviving = sum(
        n_points * (1.0 - q**j) for j, n_points in enumerate(coverage_histogram)
    )
    return surviving / total
