"""A mutable sensor deployment: positions plus an alive mask.

Placement algorithms append nodes one at a time (hundreds to thousands per
run), so positions live in a capacity-doubling buffer for amortised O(1)
appends — per the optimisation guides, no per-step reallocation in the hot
loop.  Node ids are stable for the lifetime of the deployment; failures flip
the alive mask rather than compacting the arrays.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CoverageError, GeometryError
from repro.geometry.points import as_point, as_points

__all__ = ["Deployment"]


class Deployment:
    """A growing set of sensor positions with an alive/failed mask.

    Parameters
    ----------
    positions:
        Optional initial ``(n, 2)`` node positions (all alive).

    Examples
    --------
    >>> d = Deployment([[1.0, 2.0]])
    >>> nid = d.add([3.0, 4.0])
    >>> d.n_alive
    2
    >>> d.fail([nid])
    >>> d.n_alive
    1
    """

    _INITIAL_CAPACITY = 64

    def __init__(self, positions: np.ndarray | None = None):
        if positions is None or len(np.atleast_2d(positions)) == 0:
            cap = self._INITIAL_CAPACITY
            self._pos = np.empty((cap, 2), dtype=np.float64)
            self._alive = np.zeros(cap, dtype=bool)
            self._n = 0
        else:
            init = as_points(positions)
            cap = max(self._INITIAL_CAPACITY, 2 * len(init))
            self._pos = np.empty((cap, 2), dtype=np.float64)
            self._alive = np.zeros(cap, dtype=bool)
            self._n = len(init)
            self._pos[: self._n] = init
            self._alive[: self._n] = True

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Total nodes ever added (alive + failed)."""
        return self._n

    @property
    def n_total(self) -> int:
        return self._n

    @property
    def n_alive(self) -> int:
        return int(self._alive[: self._n].sum())

    @property
    def n_failed(self) -> int:
        return self._n - self.n_alive

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def positions(self) -> np.ndarray:
        """Positions of all nodes ever added, ``(n_total, 2)`` (read-only view)."""
        view = self._pos[: self._n].view()
        view.flags.writeable = False
        return view

    @property
    def alive_mask(self) -> np.ndarray:
        """Alive flags, ``(n_total,)`` (read-only view)."""
        view = self._alive[: self._n].view()
        view.flags.writeable = False
        return view

    def alive_ids(self) -> np.ndarray:
        """Ids of alive nodes."""
        return np.nonzero(self._alive[: self._n])[0]

    def alive_positions(self) -> np.ndarray:
        """Positions of alive nodes (copy), ``(n_alive, 2)``."""
        return self._pos[: self._n][self._alive[: self._n]].copy()

    def position_of(self, node_id: int) -> np.ndarray:
        self._check_id(node_id)
        return self._pos[node_id].copy()

    def is_alive(self, node_id: int) -> bool:
        self._check_id(node_id)
        return bool(self._alive[node_id])

    def _check_id(self, node_id: int) -> None:
        if not (0 <= node_id < self._n):
            raise GeometryError(f"unknown node id {node_id}")

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _grow(self, needed: int) -> None:
        if self._n + needed <= self._pos.shape[0]:
            return
        cap = self._pos.shape[0]
        while cap < self._n + needed:
            cap *= 2
        new_pos = np.empty((cap, 2), dtype=np.float64)
        new_alive = np.zeros(cap, dtype=bool)
        new_pos[: self._n] = self._pos[: self._n]
        new_alive[: self._n] = self._alive[: self._n]
        self._pos, self._alive = new_pos, new_alive

    def add(self, position: np.ndarray) -> int:
        """Append one alive node; returns its (stable) id."""
        pos = as_point(position)
        self._grow(1)
        nid = self._n
        self._pos[nid] = pos
        self._alive[nid] = True
        self._n += 1
        return nid

    def add_many(self, positions: np.ndarray) -> np.ndarray:
        """Append several alive nodes; returns their ids."""
        pts = as_points(positions)
        m = len(pts)
        self._grow(m)
        ids = np.arange(self._n, self._n + m, dtype=np.intp)
        self._pos[self._n : self._n + m] = pts
        self._alive[self._n : self._n + m] = True
        self._n += m
        return ids

    def fail(self, node_ids: np.ndarray) -> None:
        """Mark nodes as failed.  Failing an already-failed node raises."""
        ids = np.asarray(node_ids, dtype=np.intp).reshape(-1)
        for nid in ids:
            self._check_id(int(nid))
        if not np.all(self._alive[ids]):
            raise CoverageError("failing a node that is already failed")
        self._alive[ids] = False

    def revive(self, node_ids: np.ndarray) -> None:
        """Bring failed nodes back (used by sleep scheduling / tests)."""
        ids = np.asarray(node_ids, dtype=np.intp).reshape(-1)
        for nid in ids:
            self._check_id(int(nid))
        if np.any(self._alive[ids]):
            raise CoverageError("reviving a node that is alive")
        self._alive[ids] = True

    # ------------------------------------------------------------------
    def copy(self) -> "Deployment":
        """Deep copy (same ids, same alive mask)."""
        new = Deployment()
        new._grow(self._n)
        new._pos[: self._n] = self._pos[: self._n]
        new._alive[: self._n] = self._alive[: self._n]
        new._n = self._n
        return new

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deployment(n_alive={self.n_alive}, n_failed={self.n_failed})"
