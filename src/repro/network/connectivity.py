"""Communication graph and k-connectivity checks (paper §2).

Two alive sensors are 1-hop neighbours iff their distance is at most the
communication radius ``rc`` (unit-disc graph).  The paper notes that when
``rc >= 2 rs``, full 1-coverage implies connectivity, and k-coverage implies
k-connectivity (the network survives any ``k - 1`` node failures) — tests
exercise this corollary on DECOR outputs.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
from scipy.spatial import cKDTree

from repro.errors import ConfigurationError
from repro.geometry.points import as_points

__all__ = [
    "communication_graph",
    "is_connected",
    "node_connectivity_at_least",
    "connected_components_count",
]


def communication_graph(positions: np.ndarray, rc: float) -> nx.Graph:
    """Unit-disc communication graph over node positions.

    Parameters
    ----------
    positions:
        ``(n, 2)`` alive-node positions; node ``i`` of the graph is row ``i``.
    rc:
        Communication radius; edges join pairs at distance ``<= rc``.
    """
    pts = as_points(positions)
    if rc <= 0:
        raise ConfigurationError(f"communication radius must be positive, got {rc}")
    g = nx.Graph()
    g.add_nodes_from(range(len(pts)))
    if len(pts) >= 2:
        tree = cKDTree(pts)
        pairs = tree.query_pairs(rc, output_type="ndarray")
        g.add_edges_from(map(tuple, pairs))
    return g


def is_connected(positions: np.ndarray, rc: float) -> bool:
    """Whether the communication graph is connected (vacuously true for <= 1 node)."""
    pts = as_points(positions)
    if len(pts) <= 1:
        return True
    return nx.is_connected(communication_graph(pts, rc))


def connected_components_count(positions: np.ndarray, rc: float) -> int:
    """Number of connected components of the communication graph."""
    return nx.number_connected_components(communication_graph(positions, rc))


def node_connectivity_at_least(positions: np.ndarray, rc: float, k: int) -> bool:
    """Whether the communication graph is (at least) ``k``-node-connected.

    Uses an early-exit: ``k``-connectivity requires minimum degree ``>= k``,
    which is cheap to check before the (expensive) max-flow based
    :func:`networkx.node_connectivity`.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    pts = as_points(positions)
    if len(pts) <= k:
        # graph on n <= k nodes cannot be k-connected unless complete & n = k+1
        return len(pts) >= 1 and k == 1 and is_connected(pts, rc) if len(pts) > 1 else len(pts) == 1
    g = communication_graph(pts, rc)
    if min(dict(g.degree()).values(), default=0) < k:
        return False
    return nx.node_connectivity(g) >= k
