"""Failure models (paper §2.1).

Three injectors, each returning a :class:`FailureEvent` naming the node ids
to kill (the caller applies it to a :class:`~repro.network.deployment.Deployment`
and/or a :class:`~repro.network.coverage.CoverageState`):

* :func:`random_failures` — every alive node fails independently, either
  with probability ``q`` or as an exact fraction of the population (the
  x-axis of Figures 11 and 12).
* :func:`area_failure` — a disaster disc kills every node inside (Figure 6:
  radius 24 on the 100x100 field, about 17% of the area; Figures 13 and 14).
* :func:`correlated_cluster_failures` — a seed node fails and drags down
  geographically close nodes with distance-decaying probability; models the
  paper's remark that real failures are geographically correlated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.points import as_point, squared_distances_to
from repro.network.deployment import Deployment

__all__ = [
    "FailureEvent",
    "random_failures",
    "area_failure",
    "correlated_cluster_failures",
    "apply_failure",
]


@dataclass(frozen=True)
class FailureEvent:
    """A set of node failures with provenance metadata.

    Attributes
    ----------
    node_ids:
        Ids of nodes that fail (all alive at injection time).
    kind:
        ``"random"``, ``"area"`` or ``"correlated"``.
    detail:
        Model-specific parameters (for experiment records).
    """

    node_ids: np.ndarray
    kind: str
    detail: dict = field(default_factory=dict)

    @property
    def n_failed(self) -> int:
        return int(self.node_ids.size)


def random_failures(
    deployment: Deployment,
    rng: np.random.Generator,
    *,
    probability: float | None = None,
    fraction: float | None = None,
) -> FailureEvent:
    """Independent random node failures among the alive nodes.

    Exactly one of ``probability`` (i.i.d. Bernoulli per node) or
    ``fraction`` (an exact share of the alive population, sampled without
    replacement — what the paper's "x% of nodes fail" axes mean) must be
    given.
    """
    if (probability is None) == (fraction is None):
        raise ConfigurationError("give exactly one of probability= or fraction=")
    alive = deployment.alive_ids()
    if probability is not None:
        if not (0.0 <= probability <= 1.0):
            raise ConfigurationError(f"probability must be in [0, 1], got {probability}")
        mask = rng.random(alive.size) < probability
        failed = alive[mask]
        detail = {"probability": probability}
    else:
        if not (0.0 <= fraction <= 1.0):
            raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
        n_fail = int(round(fraction * alive.size))
        failed = rng.choice(alive, size=n_fail, replace=False) if n_fail else alive[:0]
        detail = {"fraction": fraction}
    return FailureEvent(np.sort(failed.astype(np.intp)), "random", detail)


def area_failure(
    deployment: Deployment,
    center: np.ndarray,
    radius: float,
) -> FailureEvent:
    """A disaster disc: every alive node within ``radius`` of ``center`` fails."""
    if radius < 0:
        raise ConfigurationError(f"negative disaster radius {radius}")
    c = as_point(center)
    alive = deployment.alive_ids()
    if alive.size == 0:
        return FailureEvent(alive, "area", {"center": tuple(c), "radius": radius})
    pos = deployment.positions[alive]
    d2 = squared_distances_to(pos, c)
    failed = alive[d2 <= radius * radius + 1e-12]
    return FailureEvent(
        np.sort(failed.astype(np.intp)),
        "area",
        {"center": (float(c[0]), float(c[1])), "radius": float(radius)},
    )


def correlated_cluster_failures(
    deployment: Deployment,
    rng: np.random.Generator,
    *,
    n_seeds: int = 1,
    correlation_radius: float = 10.0,
    decay: float = 2.0,
) -> FailureEvent:
    """Geographically correlated failures.

    ``n_seeds`` alive nodes are picked uniformly and fail; every other alive
    node fails with probability ``exp(-(d / correlation_radius) ** decay)``
    where ``d`` is its distance to the nearest seed.  With a small
    ``correlation_radius`` this degenerates to ``n_seeds`` random failures;
    with a large one it approaches an area failure around each seed.
    """
    if n_seeds < 1:
        raise ConfigurationError(f"need at least one seed, got {n_seeds}")
    if correlation_radius <= 0:
        raise ConfigurationError("correlation radius must be positive")
    if decay <= 0:
        raise ConfigurationError("decay must be positive")
    alive = deployment.alive_ids()
    if alive.size == 0:
        return FailureEvent(alive, "correlated", {"n_seeds": n_seeds})
    n_seeds = min(n_seeds, alive.size)
    seeds = rng.choice(alive, size=n_seeds, replace=False)
    pos = deployment.positions
    alive_pos = pos[alive]
    d2_min = np.full(alive.size, np.inf)
    for s in seeds:
        np.minimum(d2_min, squared_distances_to(alive_pos, pos[s]), out=d2_min)
    p_fail = np.exp(-((np.sqrt(d2_min) / correlation_radius) ** decay))
    mask = rng.random(alive.size) < p_fail
    # seeds always fail
    mask |= np.isin(alive, seeds)
    failed = alive[mask]
    return FailureEvent(
        np.sort(failed.astype(np.intp)),
        "correlated",
        {
            "n_seeds": int(n_seeds),
            "correlation_radius": float(correlation_radius),
            "decay": float(decay),
        },
    )


def apply_failure(event: FailureEvent, deployment: Deployment, coverage=None) -> None:
    """Apply a failure event to a deployment (and optionally its coverage state).

    The coverage state must have been keyed by deployment node ids (as
    :meth:`CoverageState.from_deployment` does).
    """
    deployment.fail(event.node_ids)
    if coverage is not None:
        coverage.remove_sensors(event.node_ids)
