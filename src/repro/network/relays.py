"""Connectivity repair by relay insertion.

The paper (§2) is careful to note that "area coverage does not necessarily
imply network connectivity": only when ``rc >= 2 rs`` does full coverage
guarantee a connected communication graph.  When a deployment violates
that condition — or failures partition the network — data can no longer
reach the base station even though the area is still sensed.

:func:`connect_components` restores connectivity with pure *relay* nodes
(no sensing role): it repeatedly finds the closest pair of nodes in
different connected components and drops relays along the segment between
them at spacing ``<= rc``, merging components until one remains.  This is
the classic greedy Steinerisation of the component graph (an MST over
components with per-edge cost = relays needed), within a small constant of
optimal for this metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.points import as_points
from repro.network.connectivity import communication_graph

__all__ = ["RelayPlan", "connect_components", "relays_for_segment"]


def relays_for_segment(a: np.ndarray, b: np.ndarray, rc: float) -> np.ndarray:
    """Relay positions evenly spaced along ``a -> b`` with gaps ``<= rc``.

    Returns an empty array when ``a`` and ``b`` are already within range.
    """
    if rc <= 0:
        raise ConfigurationError(f"rc must be positive, got {rc}")
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    d = float(np.linalg.norm(b - a))
    if d <= rc:
        return np.empty((0, 2))
    n = math.ceil(d / rc) - 1
    ts = np.arange(1, n + 1) / (n + 1)
    return a[None, :] + ts[:, None] * (b - a)[None, :]


@dataclass(frozen=True)
class RelayPlan:
    """Result of a connectivity repair.

    Attributes
    ----------
    relay_positions:
        ``(m, 2)`` positions of the inserted relays (may be empty).
    components_before:
        Connected-component count of the original graph.
    bridged_pairs:
        The ``(node_i, node_j)`` endpoint pairs each bridge spans, in
        insertion order (indices into the original positions).
    """

    relay_positions: np.ndarray
    components_before: int
    bridged_pairs: list[tuple[int, int]]

    @property
    def n_relays(self) -> int:
        return int(self.relay_positions.shape[0])


def connect_components(positions: np.ndarray, rc: float) -> RelayPlan:
    """Relays making the communication graph over ``positions`` connected.

    Parameters
    ----------
    positions:
        ``(n, 2)`` alive sensor positions, ``n >= 1``.
    rc:
        Communication radius (relays have the same radio).

    Returns
    -------
    RelayPlan
        Empty plan when the graph is already connected.

    Notes
    -----
    Greedy closest-pair bridging: at every step the two closest components
    (by minimum inter-node distance) are joined.  This is exactly Kruskal
    on the component metric, so the number of bridges is ``components - 1``
    and the total bridged length is minimal among spanning structures that
    only bridge between existing nodes.
    """
    pts = as_points(positions)
    if pts.shape[0] == 0:
        raise ConfigurationError("cannot connect an empty deployment")
    graph = communication_graph(pts, rc)
    import networkx as nx

    components = [np.asarray(sorted(c), dtype=np.intp)
                  for c in nx.connected_components(graph)]
    n_before = len(components)
    relays: list[np.ndarray] = []
    bridged: list[tuple[int, int]] = []

    while len(components) > 1:
        # closest pair of nodes across the two nearest components
        best = None  # (dist, ci, cj, node_i, node_j)
        for i in range(len(components)):
            for j in range(i + 1, len(components)):
                a, b = components[i], components[j]
                # vectorised min distance between the two index sets
                diff = pts[a][:, None, :] - pts[b][None, :, :]
                d2 = np.einsum("ijk,ijk->ij", diff, diff)
                flat = int(np.argmin(d2))
                ai, bj = divmod(flat, d2.shape[1])
                dist = math.sqrt(float(d2[ai, bj]))
                if best is None or dist < best[0]:
                    best = (dist, i, j, int(a[ai]), int(b[bj]))
        assert best is not None
        _, ci, cj, ni, nj = best
        relays.append(relays_for_segment(pts[ni], pts[nj], rc))
        bridged.append((ni, nj))
        merged = np.concatenate([components[ci], components[cj]])
        components = [
            c for idx, c in enumerate(components) if idx not in (ci, cj)
        ] + [np.sort(merged)]

    relay_positions = (
        np.vstack([r for r in relays if r.size]) if any(r.size for r in relays)
        else np.empty((0, 2))
    )
    return RelayPlan(
        relay_positions=relay_positions,
        components_before=n_before,
        bridged_pairs=bridged,
    )
