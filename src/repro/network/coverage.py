"""Incremental k-coverage bookkeeping over a field approximation.

The paper replaces the continuous area with a finite low-discrepancy point
set; coverage of the area is then the vector of per-point coverage counts
``k_p`` = number of alive sensors within the sensing radius of point ``p``
(§3.2).  :class:`CoverageState` maintains that vector incrementally: adding
or removing a sensor touches only the points inside its sensing disc, found
with one ball query against the shared :class:`~repro.field.FieldModel` —
never a global recount.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CoverageError, GeometryError
from repro.field import FieldModel, as_field_model
from repro.geometry.points import as_point

__all__ = ["CoverageState"]


class CoverageState:
    """Per-field-point sensor coverage counts, updated incrementally.

    Parameters
    ----------
    field_points:
        ``(n, 2)`` approximation of the monitored area, or a shared
        :class:`~repro.field.FieldModel` over it (which lets many coverage
        states reuse one neighbour index).
    sensing_radius:
        The sensors' common sensing radius ``rs``.

    Notes
    -----
    Sensors are registered under caller-chosen integer keys (usually
    :class:`~repro.network.deployment.Deployment` node ids).  The state
    remembers which points each key covers so removal is exact.

    Examples
    --------
    >>> cs = CoverageState([[0.0, 0.0], [10.0, 0.0]], sensing_radius=2.0)
    >>> _ = cs.add_sensor(0, [0.5, 0.0])
    >>> cs.counts.tolist()
    [1, 0]
    >>> cs.covered_fraction(k=1)
    0.5
    """

    def __init__(
        self, field_points: np.ndarray | FieldModel, sensing_radius: float
    ):
        self._field = as_field_model(field_points)
        self._points = self._field.points
        if self._points.shape[0] == 0:
            raise GeometryError("the field approximation must be non-empty")
        if sensing_radius <= 0:
            raise GeometryError(f"sensing radius must be positive, got {sensing_radius}")
        self._rs = float(sensing_radius)
        self._counts = np.zeros(self._points.shape[0], dtype=np.int64)
        self._covered_by: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_deployment(
        cls, field_points: np.ndarray | FieldModel, sensing_radius: float, deployment
    ) -> "CoverageState":
        """Coverage state of a deployment's *alive* nodes (keys = node ids)."""
        state = cls(field_points, sensing_radius)
        for nid in deployment.alive_ids():
            state.add_sensor(int(nid), deployment.position_of(int(nid)))
        return state

    # ------------------------------------------------------------------
    # read access
    # ------------------------------------------------------------------
    @property
    def field_points(self) -> np.ndarray:
        view = self._points.view()
        view.flags.writeable = False
        return view

    @property
    def field(self) -> FieldModel:
        """The shared spatial model of the field approximation."""
        return self._field

    @property
    def sensing_radius(self) -> float:
        return self._rs

    @property
    def n_points(self) -> int:
        return self._points.shape[0]

    @property
    def n_sensors(self) -> int:
        return len(self._covered_by)

    @property
    def counts(self) -> np.ndarray:
        """Coverage count ``k_p`` for every field point (read-only view)."""
        view = self._counts.view()
        view.flags.writeable = False
        return view

    def sensor_keys(self) -> list[int]:
        return sorted(self._covered_by)

    def points_covered_by(self, key: int) -> np.ndarray:
        """Field-point indices inside sensor ``key``'s sensing disc."""
        try:
            return self._covered_by[key].copy()
        except KeyError:
            raise CoverageError(f"unknown sensor key {key}") from None

    # ------------------------------------------------------------------
    # coverage queries
    # ------------------------------------------------------------------
    def covered_fraction(self, k: int = 1) -> float:
        """Fraction of field points covered by at least ``k`` sensors."""
        self._check_k(k)
        return float(np.count_nonzero(self._counts >= k)) / self.n_points

    def deficient_indices(self, k: int) -> np.ndarray:
        """Indices of points with coverage below ``k`` (the uncovered-region
        representation of §3.2 after point elimination)."""
        self._check_k(k)
        return np.nonzero(self._counts < k)[0]

    def deficiency(self, k: int) -> np.ndarray:
        """``max(k - k_p, 0)`` per point — the weight in the benefit formula."""
        self._check_k(k)
        return np.maximum(k - self._counts, 0)

    def is_fully_covered(self, k: int) -> bool:
        self._check_k(k)
        return bool(np.all(self._counts >= k))

    def min_coverage(self) -> int:
        """The smallest per-point count (the field's weakest spot)."""
        return int(self._counts.min())

    def coverage_histogram(self, max_k: int | None = None) -> np.ndarray:
        """``hist[j]`` = number of points covered exactly ``j`` times
        (counts above ``max_k`` clamp into the last bin when given)."""
        counts = self._counts
        if max_k is not None:
            counts = np.minimum(counts, max_k)
        return np.bincount(counts)

    @staticmethod
    def _check_k(k: int) -> None:
        if k < 1:
            raise CoverageError(f"coverage requirement k must be >= 1, got {k}")

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_sensor(self, key: int, position: np.ndarray) -> np.ndarray:
        """Register a sensor; returns the point indices it covers."""
        if key in self._covered_by:
            raise CoverageError(f"sensor key {key} already registered")
        pos = as_point(position)
        covered = self._field.query_ball(pos, self._rs)
        self._counts[covered] += 1
        self._covered_by[key] = covered
        return covered.copy()

    def add_sensor_with_cover(self, key: int, covered: np.ndarray) -> None:
        """Register a sensor with an externally computed cover set.

        For heterogeneous fleets the covering radius varies per sensor; the
        caller (e.g. :mod:`repro.core.mixed`) supplies the exact field-point
        indices the sensor covers.  Bookkeeping (counts, removal) behaves
        exactly as for :meth:`add_sensor`.
        """
        if key in self._covered_by:
            raise CoverageError(f"sensor key {key} already registered")
        cov = np.asarray(covered, dtype=np.intp).reshape(-1)
        if cov.size and (cov.min() < 0 or cov.max() >= self.n_points):
            raise CoverageError("cover set references unknown field points")
        if len(np.unique(cov)) != cov.size:
            raise CoverageError("cover set contains duplicate points")
        self._counts[cov] += 1
        self._covered_by[key] = cov

    def remove_sensor(self, key: int) -> np.ndarray:
        """Unregister a sensor (failure); returns the points it covered."""
        try:
            covered = self._covered_by.pop(key)
        except KeyError:
            raise CoverageError(f"unknown sensor key {key}") from None
        self._counts[covered] -= 1
        return covered.copy()

    def remove_sensors(self, keys) -> None:
        """Unregister several sensors at once."""
        for key in keys:
            self.remove_sensor(int(key))

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def recomputed_counts(self) -> np.ndarray:
        """Counts recomputed from scratch (O(sensors) ball queries).

        Tests assert this equals :attr:`counts` after arbitrary add/remove
        interleavings — the incremental-equals-batch invariant.
        """
        fresh = np.zeros(self.n_points, dtype=np.int64)
        for covered in self._covered_by.values():
            fresh[covered] += 1
        return fresh

    def validate(self) -> None:
        """Raise :class:`CoverageError` if the incremental counts drifted."""
        if not np.array_equal(self._counts, self.recomputed_counts()):
            raise CoverageError("incremental coverage counts are inconsistent")
