"""Persistence of figure results (JSON round-trip, CSV export)."""

from __future__ import annotations

import csv
import io
import json

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.figures import FigureResult

__all__ = ["figure_to_json", "figure_from_json", "figure_to_csv"]


def _jsonable(obj):
    """Recursively convert NumPy containers/scalars to plain Python."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


def figure_to_json(result: FigureResult) -> str:
    """Serialise a figure result to a JSON string."""
    payload = {
        "figure_id": result.figure_id,
        "title": result.title,
        "xlabel": result.xlabel,
        "ylabel": result.ylabel,
        "series": {
            name: {"x": x.tolist(), "y": y.tolist()}
            for name, (x, y) in result.series.items()
        },
        "meta": _jsonable(result.meta),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def figure_from_json(text: str) -> FigureResult:
    """Inverse of :func:`figure_to_json`."""
    try:
        payload = json.loads(text)
        series = {
            name: (
                np.asarray(entry["x"], dtype=float),
                np.asarray(entry["y"], dtype=float),
            )
            for name, entry in payload["series"].items()
        }
        return FigureResult(
            figure_id=payload["figure_id"],
            title=payload["title"],
            xlabel=payload["xlabel"],
            ylabel=payload["ylabel"],
            series=series,
            meta=payload.get("meta", {}),
        )
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise ExperimentError(f"malformed figure JSON: {exc}") from exc


def figure_to_csv(result: FigureResult) -> str:
    """Long-format CSV: ``figure,series,x,y`` rows."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["figure", "series", "x", "y"])
    for name, (xs, ys) in result.series.items():
        for x, y in zip(xs, ys):
            writer.writerow([result.figure_id, name, float(x), float(y)])
    return buf.getvalue()
