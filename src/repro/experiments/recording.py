"""Persistence of figure results (JSON round-trip, CSV round-trip).

Serialisation is strict JSON (``allow_nan=False``): non-finite floats —
which do occur in figure data, e.g. the message-count series of methods
that send none — are encoded portably instead of relying on the
JavaScript-incompatible ``NaN``/``Infinity`` literals.  Series values use
the strings ``"nan"`` / ``"inf"`` / ``"-inf"`` (NumPy parses them back
when the array is rebuilt); metadata floats use a ``{"__float__": ...}``
sentinel object that :func:`figure_from_json` decodes symmetrically.

The CSV form is long-format (``figure,series,x,y``) for spreadsheet use;
:func:`figure_from_csv` rebuilds the series and figure id from it, but the
title, axis labels and metadata are not part of the CSV and come back
empty — use the JSON round-trip when full fidelity matters.
"""

from __future__ import annotations

import csv
import io
import json
import math

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.figures import FigureResult

__all__ = [
    "figure_to_json",
    "figure_from_json",
    "figure_to_csv",
    "figure_from_csv",
]


def _encode_nonfinite(value: float):
    """A JSON-safe stand-in for a float: itself, or a sentinel string."""
    if math.isnan(value):
        return "nan"
    if value == math.inf:
        return "inf"
    if value == -math.inf:
        return "-inf"
    return value


def _jsonable(obj):
    """Recursively convert NumPy containers/scalars to plain Python.

    Guarantees the result survives ``json.dumps(..., allow_nan=False)``:
    non-finite floats become ``{"__float__": "nan" | "inf" | "-inf"}``
    sentinels, which :func:`_unjsonable` turns back into floats.
    """
    if isinstance(obj, np.ndarray):
        return _jsonable(obj.tolist())
    if isinstance(obj, (bool, np.bool_)):
        return bool(obj)
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        as_float = float(obj)
        if math.isfinite(as_float):
            return as_float
        return {"__float__": _encode_nonfinite(as_float)}
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


def _unjsonable(obj):
    """Inverse of :func:`_jsonable` (decode the non-finite sentinels)."""
    if isinstance(obj, dict):
        if set(obj) == {"__float__"}:
            return float(obj["__float__"])
        return {k: _unjsonable(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_unjsonable(v) for v in obj]
    return obj


def figure_to_json(result: FigureResult) -> str:
    """Serialise a figure result to a (strict) JSON string."""
    payload = {
        "figure_id": result.figure_id,
        "title": result.title,
        "xlabel": result.xlabel,
        "ylabel": result.ylabel,
        "series": {
            name: {
                "x": [_encode_nonfinite(float(v)) for v in x],
                "y": [_encode_nonfinite(float(v)) for v in y],
            }
            for name, (x, y) in result.series.items()
        },
        "meta": _jsonable(result.meta),
    }
    return json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)


def figure_from_json(text: str) -> FigureResult:
    """Inverse of :func:`figure_to_json`."""
    try:
        payload = json.loads(text)
        series = {
            name: (
                np.asarray(entry["x"], dtype=float),
                np.asarray(entry["y"], dtype=float),
            )
            for name, entry in payload["series"].items()
        }
        return FigureResult(
            figure_id=payload["figure_id"],
            title=payload["title"],
            xlabel=payload["xlabel"],
            ylabel=payload["ylabel"],
            series=series,
            meta=_unjsonable(payload.get("meta", {})),
        )
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise ExperimentError(f"malformed figure JSON: {exc}") from exc


def figure_to_csv(result: FigureResult) -> str:
    """Long-format CSV: ``figure,series,x,y`` rows."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["figure", "series", "x", "y"])
    for name, (xs, ys) in result.series.items():
        for x, y in zip(xs, ys):
            writer.writerow([result.figure_id, name, float(x), float(y)])
    return buf.getvalue()


def figure_from_csv(text: str) -> FigureResult:
    """Rebuild a figure result from :func:`figure_to_csv` output.

    The CSV form is intentionally minimal, so the round-trip is lossy:
    the series data and figure id survive exactly (including non-finite
    values — ``float("nan")`` prints and parses back), while ``title``,
    ``xlabel``, ``ylabel`` and ``meta`` come back empty.
    """
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise ExperimentError("empty figure CSV") from None
    if header != ["figure", "series", "x", "y"]:
        raise ExperimentError(f"unexpected figure CSV header: {header!r}")
    figure_ids: set[str] = set()
    points: dict[str, list[tuple[float, float]]] = {}
    try:
        for row in reader:
            if not row:
                continue
            figure_id, name, x, y = row
            figure_ids.add(figure_id)
            points.setdefault(name, []).append((float(x), float(y)))
    except ValueError as exc:
        raise ExperimentError(f"malformed figure CSV: {exc}") from exc
    if len(figure_ids) != 1:
        raise ExperimentError(
            f"figure CSV must hold exactly one figure, got {sorted(figure_ids)}"
        )
    series = {
        name: (
            np.asarray([p[0] for p in rows], dtype=float),
            np.asarray([p[1] for p in rows], dtype=float),
        )
        for name, rows in points.items()
    }
    return FigureResult(
        figure_id=figure_ids.pop(),
        title="",
        xlabel="",
        ylabel="",
        series=series,
        meta={},
    )
