"""Experiment constants (paper §4) and the six method series.

The paper's setup: a 100x100 field approximated with 2000 Halton points
(Hammersley gives similar results), sensing radius ``rs = 4``; grid cells of
5x5 ("small") and 10x10 ("big"); Voronoi communication radii ``rc = 8``
("small", = 2 rs) and ``rc = 10 sqrt(2) ≈ 14`` ("big", the minimum radius
letting 5x5-cell leaders talk without routing); up to 200 initially
deployed sensors; every figure averages 5 runs on randomly generated
fields.

``ExperimentSetup.smoke()`` shrinks everything proportionally so the full
figure suite runs in seconds (tests, default benchmarks); the shapes are
scale-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.geometry.region import Rect
from repro.network.spec import SensorSpec

__all__ = ["ExperimentSetup", "Series", "SERIES", "series_by_name"]


@dataclass(frozen=True)
class Series:
    """One line of the paper's figures.

    Attributes
    ----------
    name:
        Label used across figures (e.g. ``"grid-small"``).
    method:
        Name for :func:`repro.core.run_method`.
    cell:
        ``"small"``/``"big"`` for the grid variants, else None.
    rc:
        ``"small"``/``"big"`` for the Voronoi variants, else None (uses the
        setup's default rc).
    """

    name: str
    method: str
    cell: str | None = None
    rc: str | None = None


#: The six series of every figure, in the paper's legend order.
SERIES: tuple[Series, ...] = (
    Series("grid-small", "grid", cell="small"),
    Series("grid-big", "grid", cell="big"),
    Series("voronoi-small", "voronoi", rc="small"),
    Series("voronoi-big", "voronoi", rc="big"),
    Series("centralized", "centralized"),
    Series("random", "random"),
)

#: The four distributed series (Figure 10 only).
DECOR_SERIES: tuple[str, ...] = (
    "grid-small",
    "grid-big",
    "voronoi-small",
    "voronoi-big",
)


def series_by_name(name: str) -> Series:
    for s in SERIES:
        if s.name == name:
            return s
    raise ConfigurationError(
        f"unknown series {name!r}; known: {[s.name for s in SERIES]}"
    )


@dataclass(frozen=True)
class ExperimentSetup:
    """All §4 parameters in one immutable bundle."""

    field_side: float = 100.0
    n_points: int = 2000
    rs: float = 4.0
    rc_small: float = 8.0
    rc_big: float = 10.0 * math.sqrt(2.0)
    cell_small: float = 5.0
    cell_big: float = 10.0
    n_initial: int = 200
    n_seeds: int = 5
    generator: str = "halton"
    k_values: tuple[int, ...] = (1, 2, 3, 4, 5)
    disaster_radius_fraction: float = 0.24  # radius 24 on the 100-side field

    def __post_init__(self) -> None:
        if self.field_side <= 0 or self.n_points < 1 or self.rs <= 0:
            raise ConfigurationError("invalid field parameters")
        if self.rc_small < self.rs or self.rc_big < self.rs:
            raise ConfigurationError("communication radii must be >= rs")
        if self.n_seeds < 1 or self.n_initial < 0:
            raise ConfigurationError("invalid run parameters")
        if not self.k_values or min(self.k_values) < 1:
            raise ConfigurationError("k_values must be positive")

    # ------------------------------------------------------------------
    @classmethod
    def paper(cls) -> "ExperimentSetup":
        """The exact §4 configuration."""
        return cls()

    @classmethod
    def smoke(cls) -> "ExperimentSetup":
        """A proportionally shrunk configuration for fast CI runs.

        Half the field side (a quarter of the area), a quarter of the
        points (same point density), 2 seeds, k up to 3.  rs and the cell
        sizes stay at the paper's values, so the geometric relations (a
        sensor nearly covers a small cell; the disc-to-cell ratios) are
        preserved.
        """
        return cls(
            field_side=50.0,
            n_points=500,
            n_initial=50,
            n_seeds=2,
            k_values=(1, 2, 3),
        )

    @classmethod
    def from_env(cls, env_value: str | None) -> "ExperimentSetup":
        """``"paper"`` / ``"smoke"`` / None (-> smoke) selector for benches."""
        if env_value in (None, "", "smoke"):
            return cls.smoke()
        if env_value == "paper":
            return cls.paper()
        raise ConfigurationError(
            f"unknown REPRO_SCALE value {env_value!r}; use 'smoke' or 'paper'"
        )

    def with_seeds(self, n_seeds: int) -> "ExperimentSetup":
        return replace(self, n_seeds=n_seeds)

    def describe(self) -> dict:
        """The semantic parameters as a plain JSON-safe dict.

        This is what run-ledger config fingerprints hash: every field
        that changes *what* an experiment computes, none of the
        execution details (worker count, host) that merely change how
        fast.  Tuples become lists so the dict round-trips through JSON.

        >>> ExperimentSetup.smoke().describe()["k_values"]
        [1, 2, 3]
        """
        return {
            "field_side": self.field_side,
            "n_points": self.n_points,
            "rs": self.rs,
            "rc_small": self.rc_small,
            "rc_big": self.rc_big,
            "cell_small": self.cell_small,
            "cell_big": self.cell_big,
            "n_initial": self.n_initial,
            "n_seeds": self.n_seeds,
            "generator": self.generator,
            "k_values": list(self.k_values),
            "disaster_radius_fraction": self.disaster_radius_fraction,
        }

    # ------------------------------------------------------------------
    @property
    def region(self) -> Rect:
        return Rect.square(self.field_side)

    @property
    def disaster_radius(self) -> float:
        return self.disaster_radius_fraction * self.field_side

    def spec_for(self, series: Series) -> SensorSpec:
        """Sensor spec for a series (rc varies for the Voronoi variants)."""
        if series.rc == "small":
            return SensorSpec(self.rs, self.rc_small)
        if series.rc == "big":
            return SensorSpec(self.rs, self.rc_big)
        if series.rc is not None:
            raise ConfigurationError(f"unknown rc tag {series.rc!r}")
        # grid leaders need the big radius to reach each other (paper §4);
        # centralized/random do not use rc, any valid value works
        return SensorSpec(self.rs, self.rc_big)

    def cell_size_for(self, series: Series) -> float | None:
        if series.cell == "small":
            return self.cell_small
        if series.cell == "big":
            return self.cell_big
        if series.cell is not None:
            raise ConfigurationError(f"unknown cell tag {series.cell!r}")
        return None
