"""One function per figure of the paper's evaluation (§4, Figures 7-14).

Every function takes an :class:`~repro.experiments.setup.ExperimentSetup`
(and optionally a shared :class:`~repro.experiments.runner.DeploymentCache`)
and returns a :class:`FigureResult` holding the seed-averaged series — the
same x/y data the paper plots.  The benchmark suite regenerates each figure
and asserts its qualitative shape; ``decor figure N`` prints it as a table.

Figure map
----------
=====  ================================================================
Fig 7  k-covered fraction vs number of deployed nodes (k = 3)
Fig 8  nodes needed for 100% k-coverage vs k
Fig 9  percentage of redundant nodes vs k
Fig 10 messages per cell vs k (the four distributed variants)
Fig 11 3-covered fraction vs fraction of random node failures
Fig 12 max failure fraction keeping 1-coverage of >= 90% of the area
Fig 13 k-covered fraction right after a disaster disc (radius 0.24 side)
Fig 14 extra nodes needed to restore full k-coverage after the disaster
=====  ================================================================
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.survival import (
    max_tolerable_failure_fraction,
    removal_survival_curve,
)
from repro.core.redundancy import redundancy_fraction, redundant_nodes
from repro.core.restoration import restore
from repro.errors import ExperimentError
from repro.experiments.runner import DeploymentCache
from repro.experiments.setup import DECOR_SERIES, SERIES, ExperimentSetup
from repro.network.coverage import CoverageState
from repro.network.failures import area_failure
from repro.obs import OBS

__all__ = [
    "FigureResult",
    "fig07_coverage_vs_nodes",
    "fig08_nodes_vs_k",
    "fig09_redundancy",
    "fig10_messages",
    "fig11_random_failures",
    "fig12_max_failures",
    "fig13_area_failure",
    "fig14_restoration",
    "FIGURES",
    "cells_for_figure",
    "run_figure",
]


@dataclass
class FigureResult:
    """Seed-averaged data of one figure.

    Attributes
    ----------
    figure_id / title / xlabel / ylabel:
        Presentation metadata matching the paper's figure.
    series:
        ``name -> (x, y)`` arrays, one entry per plotted line.
    meta:
        Auxiliary measurements referenced by EXPERIMENTS.md (per-node
        message counts, absolute redundant node counts, ...).
    """

    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    series: dict[str, tuple[np.ndarray, np.ndarray]]
    meta: dict = field(default_factory=dict)

    def series_names(self) -> list[str]:
        return list(self.series)

    def y_of(self, name: str) -> np.ndarray:
        return self.series[name][1]


def _figure_span(figure_id: str):
    """Wrap a figure function in an ``OBS.span("figure", ...)``.

    Applied at definition so both entry paths — direct calls and the
    :data:`FIGURES` dispatch — produce the figure → series → k hierarchy.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with OBS.span("figure", figure=figure_id):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def _seeds(setup: ExperimentSetup) -> range:
    return range(setup.n_seeds)


def _mean_over_seeds(values: list[np.ndarray]) -> np.ndarray:
    return np.mean(np.vstack(values), axis=0)


def _effective_k(setup: ExperimentSetup, k: int) -> int:
    """Clamp a figure's fixed k (the paper uses 3) into the setup's range."""
    return min(k, max(setup.k_values))


# ----------------------------------------------------------------------
# Figure 7
# ----------------------------------------------------------------------
@_figure_span("fig07")
def fig07_coverage_vs_nodes(
    setup: ExperimentSetup,
    cache: DeploymentCache | None = None,
    *,
    k: int = 3,
    n_grid: int = 40,
) -> FigureResult:
    """Percentage of k-covered points vs number of deployed nodes (Fig 7)."""
    cache = cache if cache is not None else DeploymentCache(setup)
    k = _effective_k(setup, k)
    # common node-count grid spanning all series (random reaches furthest)
    per_series_curves: dict[str, list[tuple[np.ndarray, np.ndarray]]] = {}
    xmax = 0
    for series in SERIES:
        for seed in _seeds(setup):
            result = cache.get(series, k, seed)
            xs, ys = result.coverage_trajectory()
            per_series_curves.setdefault(series.name, []).append((xs, ys))
            xmax = max(xmax, int(xs[-1]) if xs.size else 0)
    grid = np.unique(np.linspace(0, xmax, n_grid).astype(int))
    out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name, curves in per_series_curves.items():
        ys_all = []
        for xs, ys in curves:
            if xs.size == 0:
                ys_all.append(np.ones_like(grid, dtype=float))
                continue
            ys_all.append(np.interp(grid, xs, ys, left=0.0, right=ys[-1]))
        out[name] = (grid.astype(float), 100.0 * _mean_over_seeds(ys_all))
    return FigureResult(
        "fig07",
        f"Coverage achieved with different number of sensors, k = {k}",
        "number of nodes",
        "percentage of k-covered points",
        out,
        meta={"k": k},
    )


# ----------------------------------------------------------------------
# Figure 8
# ----------------------------------------------------------------------
@_figure_span("fig08")
def fig08_nodes_vs_k(
    setup: ExperimentSetup, cache: DeploymentCache | None = None
) -> FigureResult:
    """Nodes needed for 100% k-coverage vs k (Fig 8)."""
    cache = cache if cache is not None else DeploymentCache(setup)
    ks = np.asarray(setup.k_values, dtype=float)
    out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for series in SERIES:
        ys = []
        for k in setup.k_values:
            totals = [cache.get(series, k, seed).total_alive for seed in _seeds(setup)]
            ys.append(float(np.mean(totals)))
        out[series.name] = (ks.copy(), np.asarray(ys))
    return FigureResult(
        "fig08",
        "Number of nodes needed for k-coverage of the area vs. k",
        "coverage requirement k",
        "nodes needed for 100% coverage",
        out,
    )


# ----------------------------------------------------------------------
# Figure 9
# ----------------------------------------------------------------------
@_figure_span("fig09")
def fig09_redundancy(
    setup: ExperimentSetup, cache: DeploymentCache | None = None
) -> FigureResult:
    """Percentage of redundant nodes vs k (Fig 9)."""
    cache = cache if cache is not None else DeploymentCache(setup)
    ks = np.asarray(setup.k_values, dtype=float)
    out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    absolute: dict[str, list[float]] = {}
    for series in SERIES:
        ys = []
        abs_counts = []
        for k in setup.k_values:
            fracs, counts = [], []
            for seed in _seeds(setup):
                result = cache.get(series, k, seed)
                fracs.append(redundancy_fraction(result.coverage, k))
                counts.append(len(redundant_nodes(result.coverage, k)))
            ys.append(100.0 * float(np.mean(fracs)))
            abs_counts.append(float(np.mean(counts)))
        out[series.name] = (ks.copy(), np.asarray(ys))
        absolute[series.name] = abs_counts
    return FigureResult(
        "fig09",
        "Percentage of redundant nodes vs. k",
        "coverage requirement k",
        "percentage of redundant nodes",
        out,
        meta={"absolute_redundant": absolute},
    )


# ----------------------------------------------------------------------
# Figure 10
# ----------------------------------------------------------------------
@_figure_span("fig10")
def fig10_messages(
    setup: ExperimentSetup, cache: DeploymentCache | None = None
) -> FigureResult:
    """Message overhead of the four distributed variants vs k (Fig 10)."""
    cache = cache if cache is not None else DeploymentCache(setup)
    ks = np.asarray(setup.k_values, dtype=float)
    out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    per_node: dict[str, list[float]] = {}
    for series in SERIES:
        if series.name not in DECOR_SERIES:
            continue
        ys, rot = [], []
        for k in setup.k_values:
            cell_vals, node_vals = [], []
            for seed in _seeds(setup):
                stats = cache.get(series, k, seed).messages
                if stats is None:
                    raise ExperimentError(f"series {series.name} has no messages")
                cell_vals.append(stats.mean_per_cell)
                node_vals.append(stats.mean_per_node_with_rotation)
            ys.append(float(np.mean(cell_vals)))
            rot.append(float(np.mean(node_vals)))
        out[series.name] = (ks.copy(), np.asarray(ys))
        per_node[series.name] = rot
    return FigureResult(
        "fig10",
        "Message overhead of DECOR",
        "coverage requirement k",
        "number of messages / cell",
        out,
        meta={"per_node_with_rotation": per_node},
    )


# ----------------------------------------------------------------------
# Figure 11
# ----------------------------------------------------------------------
@_figure_span("fig11")
def fig11_random_failures(
    setup: ExperimentSetup,
    cache: DeploymentCache | None = None,
    *,
    k: int = 3,
    max_fraction: float = 0.30,
    n_fractions: int = 7,
) -> FigureResult:
    """k-covered fraction vs fraction of random node failures (Fig 11)."""
    cache = cache if cache is not None else DeploymentCache(setup)
    k = _effective_k(setup, k)
    fractions = np.linspace(0.0, max_fraction, n_fractions)
    out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for series in SERIES:
        ys_all = []
        for seed in _seeds(setup):
            result = cache.get(series, k, seed)
            coverage = result.coverage
            rng = np.random.default_rng(40_000 + seed)
            keys = np.asarray(coverage.sensor_keys(), dtype=np.intp)
            order = rng.permutation(keys)
            curve = removal_survival_curve(coverage, order, k)
            kills = np.round(fractions * keys.size).astype(int)
            ys_all.append(curve[kills])
        out[series.name] = (
            100.0 * fractions,
            100.0 * _mean_over_seeds(ys_all),
        )
    return FigureResult(
        "fig11",
        f"{k}-coverage under random failures",
        "percentage of nodes failed",
        "percentage of k-covered points",
        out,
        meta={"k": k},
    )


# ----------------------------------------------------------------------
# Figure 12
# ----------------------------------------------------------------------
@_figure_span("fig12")
def fig12_max_failures(
    setup: ExperimentSetup,
    cache: DeploymentCache | None = None,
    *,
    target_fraction: float = 0.9,
) -> FigureResult:
    """Max failure fraction keeping 1-coverage of >= 90% of the area (Fig 12)."""
    cache = cache if cache is not None else DeploymentCache(setup)
    ks = np.asarray(setup.k_values, dtype=float)
    out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for series in SERIES:
        ys = []
        for k in setup.k_values:
            vals = []
            for seed in _seeds(setup):
                result = cache.get(series, k, seed)
                rng = np.random.default_rng(50_000 + seed)
                vals.append(
                    max_tolerable_failure_fraction(
                        result.coverage, rng, k=1, target_fraction=target_fraction
                    )
                )
            ys.append(100.0 * float(np.mean(vals)))
        out[series.name] = (ks.copy(), np.asarray(ys))
    return FigureResult(
        "fig12",
        "Maximum allowed failures for 1-coverage of 90% of the area",
        "coverage requirement k",
        "maximum percentage of failed nodes",
        out,
        meta={"target_fraction": target_fraction},
    )


# ----------------------------------------------------------------------
# Figures 13 & 14 (area failure)
# ----------------------------------------------------------------------
def _disaster(setup: ExperimentSetup, result):
    center = setup.region.center
    return area_failure(result.deployment, center, setup.disaster_radius)


@_figure_span("fig13")
def fig13_area_failure(
    setup: ExperimentSetup, cache: DeploymentCache | None = None
) -> FigureResult:
    """k-covered fraction right after the disaster disc (Fig 13)."""
    cache = cache if cache is not None else DeploymentCache(setup)
    ks = np.asarray(setup.k_values, dtype=float)
    out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for series in SERIES:
        ys = []
        for k in setup.k_values:
            vals = []
            for seed in _seeds(setup):
                result = cache.get(series, k, seed)
                event = _disaster(setup, result)
                survivor = result.deployment.copy()
                survivor.fail(event.node_ids)
                cov = CoverageState.from_deployment(
                    result.coverage.field, setup.rs, survivor
                )
                vals.append(cov.covered_fraction(k))
            ys.append(100.0 * float(np.mean(vals)))
        out[series.name] = (ks.copy(), np.asarray(ys))
    return FigureResult(
        "fig13",
        "k-covered points after an area failure",
        "coverage requirement k",
        "percentage of k-covered points",
        out,
        meta={"disaster_radius": setup.disaster_radius},
    )


@_figure_span("fig14")
def fig14_restoration(
    setup: ExperimentSetup, cache: DeploymentCache | None = None
) -> FigureResult:
    """Extra nodes needed to restore coverage after the disaster (Fig 14)."""
    cache = cache if cache is not None else DeploymentCache(setup)
    ks = np.asarray(setup.k_values, dtype=float)
    out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for series in SERIES:
        ys = []
        for k in setup.k_values:
            vals = []
            for seed in _seeds(setup):
                result = cache.get(series, k, seed)
                event = _disaster(setup, result)
                pts = cache.field(seed)
                # dispatch by name through run_method: region/rng/cell_size
                # are wired uniformly (unused ones are ignored)
                report = restore(
                    pts,
                    setup.spec_for(series),
                    result.deployment,
                    event,
                    k,
                    series.method,
                    region=setup.region,
                    rng=np.random.default_rng(60_000 + seed),
                    cell_size=setup.cell_size_for(series),
                )
                vals.append(report.extra_nodes)
            ys.append(float(np.mean(vals)))
        out[series.name] = (ks.copy(), np.asarray(ys))
    return FigureResult(
        "fig14",
        "Number of nodes required to recover coverage of a failure area",
        "coverage requirement k",
        "extra nodes needed",
        out,
        meta={"disaster_radius": setup.disaster_radius},
    )


#: Figure number -> generator, for the CLI and benchmarks.
FIGURES = {
    7: fig07_coverage_vs_nodes,
    8: fig08_nodes_vs_k,
    9: fig09_redundancy,
    10: fig10_messages,
    11: fig11_random_failures,
    12: fig12_max_failures,
    13: fig13_area_failure,
    14: fig14_restoration,
}


def cells_for_figure(setup: ExperimentSetup, number: int) -> list[tuple[str, int, int]]:
    """The ``(series, k, seed)`` deployment cells figure ``number`` reads.

    This is the fan-out plan for :func:`repro.parallel.prefill_cache`: the
    figure functions themselves stay serial and order-sensitive, so a
    parallel run computes exactly these cells up front and the figure code
    then sees only cache hits.  Figures 7 and 11 pin k (paper: 3, clamped
    into the setup's range); Figure 10 reads only the DECOR series; the
    rest sweep every series over the full k range.
    """
    if number not in FIGURES:
        raise ExperimentError(f"unknown figure {number}; know {sorted(FIGURES)}")
    if number in (7, 11):
        k_values: list[int] = [_effective_k(setup, 3)]
    else:
        k_values = list(setup.k_values)
    series_names = [
        s.name
        for s in SERIES
        if number != 10 or s.name in DECOR_SERIES
    ]
    return [
        (name, int(k), int(seed))
        for name in series_names
        for k in k_values
        for seed in _seeds(setup)
    ]


def run_figure(
    setup: ExperimentSetup,
    number: int,
    cache: DeploymentCache | None = None,
    *,
    workers: int | None = None,
    pool=None,
) -> FigureResult:
    """Generate one figure, optionally prefilling its cells in parallel.

    With ``workers`` ``None``/``<= 1`` and no ``pool`` this is exactly
    ``FIGURES[number](setup, cache)``; otherwise the figure's deployment
    cells are computed across worker processes first (deterministic merge,
    bit-identical results) and the serial figure code runs on the warm
    cache.  A ``pool`` (:class:`repro.parallel.WorkerPool`) reuses its
    persistent workers and shared-memory fields across figures — the CLI
    creates one per invocation; longer-lived callers should too.
    """
    if number not in FIGURES:
        raise ExperimentError(f"unknown figure {number}; know {sorted(FIGURES)}")
    cache = cache if cache is not None else DeploymentCache(setup)
    if pool is not None or (workers is not None and workers > 1):
        cache.prefill(
            cells_for_figure(setup, number), workers=workers, pool=pool
        )
    return FIGURES[number](setup, cache)
