"""Seed-averaged series execution with per-process caching.

Several figures (8, 9, 10, 11, 12, 13, 14) interrogate the *same*
deployments; :class:`DeploymentCache` memoises one full placement run per
``(series, k, seed)`` so a whole-figure-suite pass deploys each network
once.

Seeding discipline: run ``seed`` fully determines the random initial
deployment, the field (for stochastic generators) and every stochastic
choice of the methods, so results are bitwise reproducible; the 5-run
averages of the paper map to seeds ``0..4``.

The cache also owns one :class:`~repro.field.FieldModel` per seed
(:meth:`DeploymentCache.field`): all six series and the entire k sweep of a
figure suite share that model's KD-tree/adjacency caches, so each spatial
index is built at most once per (field, radius) — the model's build
counters make this assertable in tests.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.planner import run_method
from repro.core.result import DeploymentResult
from repro.errors import ExperimentError
from repro.discrepancy.randomization import cranley_patterson_rotation
from repro.discrepancy.sequences import unit_points
from repro.experiments.setup import ExperimentSetup, Series, series_by_name
from repro.field import FieldModel
from repro.obs import OBS, bridge_field_stats, record_coverage_health

__all__ = [
    "field_for_seed",
    "field_model_for_seed",
    "initial_for_seed",
    "run_series",
    "DeploymentCache",
]


def field_for_seed(setup: ExperimentSetup, seed: int) -> np.ndarray:
    """The field approximation for one run.

    The paper averages runs over "randomly generated fields"; deterministic
    generators (Halton, Hammersley) are randomised per seed with a
    Cranley-Patterson rotation, which varies the field while preserving its
    low discrepancy.  Stochastic generators draw from the seed directly.
    """
    rng = np.random.default_rng(10_000 + seed)
    unit = unit_points(setup.generator, setup.n_points, rng)
    if setup.generator in ("halton", "hammersley", "lattice"):
        unit = cranley_patterson_rotation(unit, rng)
    return setup.region.scale_unit_points(unit)


def field_model_for_seed(
    setup: ExperimentSetup, seed: int, *, backend: str | None = None
) -> FieldModel:
    """A fresh :class:`~repro.field.FieldModel` over :func:`field_for_seed`.

    Use :meth:`DeploymentCache.field` when running a whole suite — it hands
    out the *same* model per seed so every series and every k share the
    cached indices.
    """
    return FieldModel(field_for_seed(setup, seed), backend=backend)


def initial_for_seed(setup: ExperimentSetup, seed: int) -> np.ndarray:
    """The random initial deployment (paper: up to 200 nodes) for one run."""
    rng = np.random.default_rng(20_000 + seed)
    return setup.region.sample(setup.n_initial, rng)


def run_series(
    setup: ExperimentSetup,
    series: Series | str,
    k: int,
    seed: int,
    *,
    initial_positions: np.ndarray | None = None,
    use_initial: bool = True,
    field: FieldModel | None = None,
) -> DeploymentResult:
    """Run one series at one (k, seed); returns the full placement result.

    Parameters
    ----------
    initial_positions:
        Override the seed-derived initial deployment (used by the
        restoration figures, which seed with failure survivors).
    use_initial:
        If false, start from an empty field (Figure 7's from-scratch
        trajectories also work seeded; both are supported).
    field:
        A shared :class:`~repro.field.FieldModel` for this seed's field.
        Must cover the same points :func:`field_for_seed` would produce;
        ``None`` builds the points (and a throwaway model) internally.
    """
    if isinstance(series, str):
        series = series_by_name(series)
    pts = field if field is not None else field_for_seed(setup, seed)
    spec = setup.spec_for(series)
    if initial_positions is None and use_initial:
        initial_positions = initial_for_seed(setup, seed)
    rng = np.random.default_rng(30_000 + seed)
    snap = (
        pts.stats.snapshot()
        if OBS.enabled and isinstance(pts, FieldModel)
        else None
    )
    with OBS.span("series", series=series.name, method=series.method, seed=seed):
        with OBS.span("k", k=k) as k_span:
            result = run_method(
                series.method,
                pts,
                spec,
                k,
                region=setup.region,
                rng=rng,
                cell_size=setup.cell_size_for(series),
                initial_positions=initial_positions,
            )
            k_span.set(added=int(result.added_ids.size))
    if snap is not None:
        bridge_field_stats(pts.stats, since=snap)
    if OBS.enabled:
        record_coverage_health(result.coverage, k)
        OBS.sample("cell", series=series.name, k=k, seed=seed)
    return result


class DeploymentCache:
    """Memoised :func:`run_series` results keyed by (series, k, seed).

    ``use_initial=False`` (the default) deploys from an empty field, which
    is how the paper's deployment figures are calibrated (its centralized
    node counts sit at the disc-packing bound, impossible when 200 randomly
    pre-placed nodes are part of the total); the failure figures then damage
    these same deployments.

    One :class:`~repro.field.FieldModel` per seed (:meth:`field`) backs
    every run: the six series and the whole k sweep reuse its cached
    KD-tree, ``rs``-adjacencies and grid decompositions.
    """

    def __init__(
        self,
        setup: ExperimentSetup,
        *,
        use_initial: bool = False,
        backend: str | None = None,
    ):
        self.setup = setup
        self.use_initial = use_initial
        self.backend = backend
        self._store: dict[tuple[str, int, int], DeploymentResult] = {}
        self._fields: dict[int, FieldModel] = {}

    def describe(self) -> dict:
        """The semantic configuration this cache's results depend on.

        Run-ledger rows fingerprint this dict: the setup parameters plus
        the selection strategy and benefit kernel in effect (both are
        bit-identity-gated, but they *are* distinct configurations worth
        separating in history).  Worker count is deliberately absent —
        pooled and serial runs of the same config are the same experiment.
        """
        return {
            "setup": self.setup.describe(),
            "use_initial": self.use_initial,
            "field_backend": self.backend
            or os.environ.get("REPRO_FIELD_BACKEND", "default"),
            "selection": os.environ.get("REPRO_SELECTION", "lazy"),
            "kernel": os.environ.get("REPRO_KERNEL", "numpy"),
        }

    def field(self, seed: int) -> FieldModel:
        """The shared per-seed :class:`~repro.field.FieldModel`."""
        key = int(seed)
        if key not in self._fields:
            self._fields[key] = field_model_for_seed(
                self.setup, key, backend=self.backend
            )
        return self._fields[key]

    def has_field(self, seed: int) -> bool:
        """Whether a model for ``seed`` exists without building one."""
        return int(seed) in self._fields

    def adopt_field(self, seed: int, model: FieldModel) -> None:
        """Use a caller-built model as this cache's per-seed field.

        The zero-copy seam for :mod:`repro.parallel` workers: a model
        reconstructed over shared-memory views stands in for the one
        :meth:`field` would have built (it must cover the same points
        :func:`field_for_seed` produces — the caller guarantees that).
        Re-adopting over an existing different model raises, for the
        same reason :meth:`absorb` refuses overwrites.
        """
        key = int(seed)
        existing = self._fields.get(key)
        if existing is not None and existing is not model:
            raise ExperimentError(
                f"cache already holds a field model for seed {key}; "
                "refusing to replace it"
            )
        self._fields[key] = model

    def drop_results(self) -> None:
        """Forget memoised results; per-seed field models are kept.

        Pool workers call this after every chunk so each submitted cell
        is computed fresh (a worker-side cache hit would skip the cell's
        telemetry and diverge from the serial stream) and worker memory
        stays bounded, while the expensive field artifacts persist.
        """
        self._store.clear()

    def get(self, series: Series | str, k: int, seed: int) -> DeploymentResult:
        name = series if isinstance(series, str) else series.name
        key = (name, int(k), int(seed))
        if key not in self._store:
            if OBS.enabled:
                OBS.counter("deployment_cache_total", outcome="miss").inc()
            self._store[key] = run_series(
                self.setup, name, k, seed,
                use_initial=self.use_initial, field=self.field(seed),
            )
        elif OBS.enabled:
            OBS.counter("deployment_cache_total", outcome="hit").inc()
        return self._store[key]

    def absorb(self, series: Series | str, k: int, seed: int,
               result: DeploymentResult) -> None:
        """Store a result computed elsewhere (a :mod:`repro.parallel` worker).

        The entry must not already be cached with a different object — a
        silent overwrite would let a worker disagree with the serial path
        unnoticed.
        """
        name = series if isinstance(series, str) else series.name
        key = (name, int(k), int(seed))
        if key in self._store and self._store[key] is not result:
            raise ExperimentError(
                f"cache already holds a result for {key}; refusing to overwrite"
            )
        self._store[key] = result

    def prefill(self, cells, *, workers: int | None = None, pool=None) -> int:
        """Compute every ``(series, k, seed)`` cell, optionally in parallel.

        Delegates to :func:`repro.parallel.prefill_cache`; with the default
        ``workers=None`` the cells run serially in-process, and a ``pool``
        (:class:`repro.parallel.WorkerPool`) reuses persistent workers
        across batches.  Returns the number of cells actually computed
        (already-cached cells are skipped).
        """
        from repro.parallel import prefill_cache

        return prefill_cache(self, cells, workers=workers, pool=pool)

    def __contains__(self, key: tuple) -> bool:
        series, k, seed = key
        name = series if isinstance(series, str) else series.name
        return (name, int(k), int(seed)) in self._store

    def __len__(self) -> int:
        return len(self._store)
