"""Text rendering of figure results.

The paper presents Figures 7-14 as plots; the reproduction prints the same
series as aligned tables (rows = x values, columns = series), which is what
the benchmark harness and ``decor figure N`` emit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.figures import FigureResult

__all__ = ["format_figure_table"]


def _fmt(value: float) -> str:
    if np.isnan(value):
        return "-"
    if float(value).is_integer() and abs(value) < 1e6:
        return f"{int(value)}"
    return f"{value:.1f}"


def format_figure_table(result: FigureResult, *, max_rows: int = 25) -> str:
    """Render a :class:`FigureResult` as an aligned text table.

    Series may have different x grids (Figure 7 shares one; the k-sweep
    figures always do); the union of x values indexes the rows, with ``-``
    where a series has no sample.
    """
    if not result.series:
        raise ExperimentError(f"{result.figure_id} has no series")
    names = result.series_names()
    xs_union = np.unique(np.concatenate([x for x, _ in result.series.values()]))
    if xs_union.size > max_rows:
        take = np.unique(
            np.linspace(0, xs_union.size - 1, max_rows).astype(int)
        )
        xs_union = xs_union[take]

    header = [result.xlabel] + names
    rows: list[list[str]] = []
    for x in xs_union:
        row = [_fmt(float(x))]
        for name in names:
            xv, yv = result.series[name]
            hit = np.nonzero(np.isclose(xv, x))[0]
            row.append(_fmt(float(yv[hit[0]])) if hit.size else "-")
        rows.append(row)

    widths = [
        max(len(header[c]), *(len(r[c]) for r in rows)) for c in range(len(header))
    ]
    lines = [
        f"{result.figure_id}: {result.title}",
        f"(y = {result.ylabel})",
        "  ".join(h.rjust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)
