"""Cross-method summary table and trace digests.

The paper presents its evaluation as eight figures; operators want the
bottom line per method at their chosen ``k``.  :func:`method_summary`
collapses the figure suite into one row per method: deployment size,
waste, communication, failure tolerance, and disaster-repair cost —
all seed-averaged from the same cached deployments the figures use.

:func:`summarize_trace` plays the same role for the observability layer:
it collapses a JSON-lines trace (or a live
:class:`~repro.obs.Tracer`) into per-span-name timing totals and event
counts, rendered by :meth:`TraceSummary.format`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.survival import max_tolerable_failure_fraction
from repro.core.redundancy import redundancy_fraction
from repro.core.restoration import restore
from repro.experiments.figures import _disaster
from repro.experiments.runner import DeploymentCache, field_for_seed
from repro.experiments.setup import SERIES, ExperimentSetup
from repro.errors import ExperimentError

__all__ = [
    "MethodSummary",
    "method_summary",
    "format_summary_table",
    "SpanStats",
    "TraceSummary",
    "summarize_trace",
]


@dataclass(frozen=True)
class MethodSummary:
    """One method's seed-averaged bottom line at a fixed k."""

    series: str
    k: int
    nodes: float
    redundancy_pct: float
    messages_per_cell: float
    messages_per_node: float
    max_failures_pct: float
    disaster_repair_nodes: float

    def as_row(self) -> dict:
        return {
            "series": self.series,
            "k": self.k,
            "nodes": round(self.nodes, 1),
            "redundancy_pct": round(self.redundancy_pct, 1),
            "messages_per_cell": round(self.messages_per_cell, 1),
            "messages_per_node": round(self.messages_per_node, 1),
            "max_failures_pct": round(self.max_failures_pct, 1),
            "disaster_repair_nodes": round(self.disaster_repair_nodes, 1),
        }


def method_summary(
    setup: ExperimentSetup,
    k: int,
    cache: DeploymentCache | None = None,
) -> list[MethodSummary]:
    """Summarise every series at coverage requirement ``k``."""
    if k not in setup.k_values:
        raise ExperimentError(
            f"k={k} not in the setup's k_values {setup.k_values}"
        )
    cache = cache if cache is not None else DeploymentCache(setup)
    out: list[MethodSummary] = []
    for series in SERIES:
        nodes, red, mpc, mpn, tol, repair_nodes = [], [], [], [], [], []
        for seed in range(setup.n_seeds):
            result = cache.get(series, k, seed)
            nodes.append(result.total_alive)
            red.append(100.0 * redundancy_fraction(result.coverage, k))
            if result.messages is not None:
                mpc.append(result.messages.mean_per_cell)
                mpn.append(result.messages.mean_per_node_with_rotation)
            rng = np.random.default_rng(70_000 + seed)
            tol.append(
                100.0 * max_tolerable_failure_fraction(result.coverage, rng, k=1)
            )
            event = _disaster(setup, result)
            report = restore(
                field_for_seed(setup, seed),
                setup.spec_for(series),
                result.deployment,
                event,
                k,
                series.method,
                region=setup.region,
                rng=np.random.default_rng(80_000 + seed),
                cell_size=setup.cell_size_for(series),
            )
            repair_nodes.append(report.extra_nodes)
        out.append(
            MethodSummary(
                series=series.name,
                k=k,
                nodes=float(np.mean(nodes)),
                redundancy_pct=float(np.mean(red)),
                messages_per_cell=float(np.mean(mpc)) if mpc else float("nan"),
                messages_per_node=float(np.mean(mpn)) if mpn else float("nan"),
                max_failures_pct=float(np.mean(tol)),
                disaster_repair_nodes=float(np.mean(repair_nodes)),
            )
        )
    return out


def format_summary_table(rows: list[MethodSummary]) -> str:
    """Aligned text rendering of :func:`method_summary` output."""
    if not rows:
        raise ExperimentError("no summary rows")
    headers = [
        "series", "nodes", "redundant%", "msgs/cell", "msgs/node",
        "tolerates%", "repair nodes",
    ]
    table: list[list[str]] = []
    for r in rows:
        table.append([
            r.series,
            f"{r.nodes:.0f}",
            f"{r.redundancy_pct:.1f}",
            "-" if np.isnan(r.messages_per_cell) else f"{r.messages_per_cell:.1f}",
            "-" if np.isnan(r.messages_per_node) else f"{r.messages_per_node:.1f}",
            f"{r.max_failures_pct:.0f}",
            f"{r.disaster_repair_nodes:.0f}",
        ])
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in table))
        for c in range(len(headers))
    ]
    lines = [
        f"Method summary at k = {rows[0].k} "
        f"(tolerates% keeps 1-coverage of >= 90% of the area)",
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in table:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# trace digests
# ----------------------------------------------------------------------
@dataclass
class SpanStats:
    """Aggregated timings of all spans sharing one name."""

    name: str
    count: int = 0
    total: float = 0.0
    max: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def add(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        if duration > self.max:
            self.max = duration


@dataclass
class TraceSummary:
    """Per-span-name and per-event-name digest of one trace.

    Attributes
    ----------
    spans:
        ``name -> SpanStats`` (count/total/mean/max seconds).
    events:
        ``name -> count``.
    max_depth:
        Deepest span nesting observed (0-based; a lone span has depth 0).
    n_records / dropped:
        Records summarised, and records the ring buffer evicted before
        export (the summary only sees what survived).
    """

    spans: dict[str, SpanStats] = field(default_factory=dict)
    events: dict[str, int] = field(default_factory=dict)
    max_depth: int = 0
    n_records: int = 0
    dropped: int = 0

    def format(self) -> str:
        """Aligned text rendering, slowest span names first."""
        lines = [
            f"Trace summary: {self.n_records} records "
            f"({sum(s.count for s in self.spans.values())} spans, "
            f"{sum(self.events.values())} events, "
            f"max depth {self.max_depth}"
            + (f", {self.dropped} dropped" if self.dropped else "")
            + ")"
        ]
        if self.spans:
            headers = ["span", "count", "total s", "mean s", "max s"]
            rows = [
                [s.name, str(s.count), f"{s.total:.4f}",
                 f"{s.mean:.6f}", f"{s.max:.6f}"]
                for s in sorted(
                    self.spans.values(), key=lambda s: -s.total
                )
            ]
            widths = [
                max(len(headers[c]), *(len(r[c]) for r in rows))
                for c in range(len(headers))
            ]
            lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
            lines.append("  ".join("-" * w for w in widths))
            for r in rows:
                lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
        for name, n in sorted(self.events.items(), key=lambda kv: -kv[1]):
            lines.append(f"event {name}: {n}")
        return "\n".join(lines)


def summarize_trace(source) -> TraceSummary:
    """Digest a trace into per-name span timings and event counts.

    Parameters
    ----------
    source:
        A :class:`~repro.obs.Tracer`, an iterable of record dicts, or a
        path to a JSON-lines trace file written by ``--trace`` /
        :meth:`~repro.obs.Tracer.write_jsonl`.
    """
    dropped = 0
    if hasattr(source, "records"):  # a Tracer
        dropped = source.dropped
        records = source.records()
    elif isinstance(source, (str, bytes)) or hasattr(source, "__fspath__"):
        with open(source, encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh if line.strip()]
    else:
        records = list(source)

    summary = TraceSummary(dropped=dropped)
    for rec in records:
        kind = rec.get("type")
        if kind == "span":
            summary.n_records += 1
            name = str(rec.get("name", "?"))
            summary.spans.setdefault(name, SpanStats(name)).add(
                float(rec.get("dur", 0.0))
            )
            summary.max_depth = max(summary.max_depth, int(rec.get("depth", 0)))
        elif kind == "event":
            summary.n_records += 1
            name = str(rec.get("name", "?"))
            summary.events[name] = summary.events.get(name, 0) + 1
        else:
            raise ExperimentError(
                f"unrecognised trace record type {kind!r}; expected a trace "
                "written by repro.obs (span/event records)"
            )
    return summary
