"""Cross-method summary table.

The paper presents its evaluation as eight figures; operators want the
bottom line per method at their chosen ``k``.  :func:`method_summary`
collapses the figure suite into one row per method: deployment size,
waste, communication, failure tolerance, and disaster-repair cost —
all seed-averaged from the same cached deployments the figures use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.survival import max_tolerable_failure_fraction
from repro.core.redundancy import redundancy_fraction
from repro.core.restoration import restore
from repro.experiments.figures import _METHOD_FNS, _disaster
from repro.experiments.runner import DeploymentCache, field_for_seed
from repro.experiments.setup import SERIES, ExperimentSetup
from repro.errors import ExperimentError

__all__ = ["MethodSummary", "method_summary", "format_summary_table"]


@dataclass(frozen=True)
class MethodSummary:
    """One method's seed-averaged bottom line at a fixed k."""

    series: str
    k: int
    nodes: float
    redundancy_pct: float
    messages_per_cell: float
    messages_per_node: float
    max_failures_pct: float
    disaster_repair_nodes: float

    def as_row(self) -> dict:
        return {
            "series": self.series,
            "k": self.k,
            "nodes": round(self.nodes, 1),
            "redundancy_pct": round(self.redundancy_pct, 1),
            "messages_per_cell": round(self.messages_per_cell, 1),
            "messages_per_node": round(self.messages_per_node, 1),
            "max_failures_pct": round(self.max_failures_pct, 1),
            "disaster_repair_nodes": round(self.disaster_repair_nodes, 1),
        }


def method_summary(
    setup: ExperimentSetup,
    k: int,
    cache: DeploymentCache | None = None,
) -> list[MethodSummary]:
    """Summarise every series at coverage requirement ``k``."""
    if k not in setup.k_values:
        raise ExperimentError(
            f"k={k} not in the setup's k_values {setup.k_values}"
        )
    cache = cache if cache is not None else DeploymentCache(setup)
    out: list[MethodSummary] = []
    for series in SERIES:
        nodes, red, mpc, mpn, tol, repair_nodes = [], [], [], [], [], []
        for seed in range(setup.n_seeds):
            result = cache.get(series, k, seed)
            nodes.append(result.total_alive)
            red.append(100.0 * redundancy_fraction(result.coverage, k))
            if result.messages is not None:
                mpc.append(result.messages.mean_per_cell)
                mpn.append(result.messages.mean_per_node_with_rotation)
            rng = np.random.default_rng(70_000 + seed)
            tol.append(
                100.0 * max_tolerable_failure_fraction(result.coverage, rng, k=1)
            )
            event = _disaster(setup, result)
            kwargs: dict = {}
            if series.method == "grid":
                kwargs = {
                    "region": setup.region,
                    "cell_size": setup.cell_size_for(series),
                }
            elif series.method == "random":
                kwargs = {
                    "region": setup.region,
                    "rng": np.random.default_rng(80_000 + seed),
                }
            report = restore(
                field_for_seed(setup, seed),
                setup.spec_for(series),
                result.deployment,
                event,
                k,
                _METHOD_FNS[series.method],
                **kwargs,
            )
            repair_nodes.append(report.extra_nodes)
        out.append(
            MethodSummary(
                series=series.name,
                k=k,
                nodes=float(np.mean(nodes)),
                redundancy_pct=float(np.mean(red)),
                messages_per_cell=float(np.mean(mpc)) if mpc else float("nan"),
                messages_per_node=float(np.mean(mpn)) if mpn else float("nan"),
                max_failures_pct=float(np.mean(tol)),
                disaster_repair_nodes=float(np.mean(repair_nodes)),
            )
        )
    return out


def format_summary_table(rows: list[MethodSummary]) -> str:
    """Aligned text rendering of :func:`method_summary` output."""
    if not rows:
        raise ExperimentError("no summary rows")
    headers = [
        "series", "nodes", "redundant%", "msgs/cell", "msgs/node",
        "tolerates%", "repair nodes",
    ]
    table: list[list[str]] = []
    for r in rows:
        table.append([
            r.series,
            f"{r.nodes:.0f}",
            f"{r.redundancy_pct:.1f}",
            "-" if np.isnan(r.messages_per_cell) else f"{r.messages_per_cell:.1f}",
            "-" if np.isnan(r.messages_per_node) else f"{r.messages_per_node:.1f}",
            f"{r.max_failures_pct:.0f}",
            f"{r.disaster_repair_nodes:.0f}",
        ])
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in table))
        for c in range(len(headers))
    ]
    lines = [
        f"Method summary at k = {rows[0].k} "
        f"(tolerates% keeps 1-coverage of >= 90% of the area)",
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in table:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
