"""Multi-epoch failure-sequence sweeps (the warm-restoration experiment).

The paper's restoration evaluation (Figure 14) injects *one* disaster and
repairs once.  Real networks fail repeatedly, and that is where the
warm-start machinery of :class:`~repro.core.restoration.RestorationSession`
earns its keep: across a sequence of failure epochs the warm engine
re-examines only each epoch's damaged region instead of rebuilding all
placement state from the whole field.

:func:`run_epoch_sweep` drives one ``(series, k, seed)`` deployment through
``epochs`` failure/repair cycles under a deterministic failure schedule
(:data:`FAILURE_SCHEDULE` cycles the three injector kinds of
:mod:`repro.network.failures`), and :func:`epoch_series` seed-averages the
per-epoch repair cost into a :class:`~repro.experiments.figures.FigureResult`
— so the epoch sweep persists, renders and replays through exactly the same
JSON/CSV/table plumbing as the paper figures.

Warm and cold sweeps are bit-identical by construction: each epoch's
failure event is drawn from a fresh per-``(seed, epoch)`` RNG over the
session's current deployment, and the session's repairs are themselves
bit-identical (see :mod:`repro.core.restoration`), so the two modes see
the same failures, place the same nodes and serialise to the same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.restoration import RestorationSession
from repro.errors import ExperimentError
from repro.experiments.figures import FigureResult
from repro.experiments.runner import DeploymentCache
from repro.experiments.setup import SERIES, ExperimentSetup, Series, series_by_name
from repro.geometry.region import Rect
from repro.network.deployment import Deployment
from repro.network.failures import (
    FailureEvent,
    area_failure,
    correlated_cluster_failures,
    random_failures,
)
from repro.obs import OBS

__all__ = [
    "FAILURE_SCHEDULE",
    "EpochRecord",
    "EpochSweepResult",
    "epoch_failure",
    "run_epoch_sweep",
    "epoch_series",
]

#: Failure kind injected at epoch ``e`` (cycled): a disaster disc, then
#: independent random failures, then a correlated cluster.
FAILURE_SCHEDULE: tuple[str, ...] = ("area", "random", "correlated")

#: Fraction of the alive population killed by a ``"random"`` epoch.
_RANDOM_FRACTION = 0.15


def epoch_failure(
    deployment: Deployment,
    region: Rect,
    epoch: int,
    seed: int = 0,
    *,
    radius: float,
) -> FailureEvent:
    """The deterministic failure event of one epoch.

    Epoch ``e`` uses injector ``FAILURE_SCHEDULE[e % 3]``; all stochastic
    choices (disc centre, victim sampling, cluster seed) come from a fresh
    RNG keyed by ``(seed, epoch)`` only, so the event depends on nothing
    but the current deployment — warm and cold sessions, whose deployments
    are bit-identical, therefore see identical failure sequences.

    ``radius`` sizes the disaster disc (and, halved, the correlation
    radius of the cluster model).
    """
    if epoch < 0:
        raise ExperimentError(f"epoch must be >= 0, got {epoch}")
    kind = FAILURE_SCHEDULE[epoch % len(FAILURE_SCHEDULE)]
    rng = np.random.default_rng(90_000 + 1009 * seed + epoch)
    if kind == "area":
        center = region.sample(1, rng)[0]
        return area_failure(deployment, center, radius)
    if kind == "random":
        return random_failures(deployment, rng, fraction=_RANDOM_FRACTION)
    return correlated_cluster_failures(
        deployment, rng, n_seeds=1, correlation_radius=radius / 2.0
    )


@dataclass(frozen=True)
class EpochRecord:
    """Outcome of one failure/repair epoch within a sweep."""

    epoch: int
    kind: str
    n_failed: int
    extra_nodes: int
    covered_after_failure: float
    covered_after_repair: float
    total_alive: int
    complete: bool

    def as_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "kind": self.kind,
            "n_failed": self.n_failed,
            "extra_nodes": self.extra_nodes,
            "covered_after_failure": self.covered_after_failure,
            "covered_after_repair": self.covered_after_repair,
            "total_alive": self.total_alive,
            "complete": self.complete,
        }


@dataclass(frozen=True)
class EpochSweepResult:
    """One ``(series, k, seed)`` deployment driven through a failure sequence."""

    series: str
    method: str
    k: int
    seed: int
    warm: bool
    records: tuple[EpochRecord, ...]

    @property
    def n_epochs(self) -> int:
        return len(self.records)

    def extra_nodes(self) -> np.ndarray:
        """Per-epoch repair cost (Figure 14's quantity, per epoch)."""
        return np.asarray([r.extra_nodes for r in self.records], dtype=float)

    def as_dict(self) -> dict:
        """JSON-ready payload; identical bytes for warm and cold sweeps
        apart from the ``warm`` flag itself (tests strip it to assert
        bit-identity of everything measured)."""
        return {
            "series": self.series,
            "method": self.method,
            "k": self.k,
            "seed": self.seed,
            "warm": self.warm,
            "records": [r.as_dict() for r in self.records],
        }


def run_epoch_sweep(
    setup: ExperimentSetup,
    series: Series | str,
    k: int,
    seed: int,
    *,
    epochs: int = 3,
    warm: bool | None = None,
    cache: DeploymentCache | None = None,
) -> EpochSweepResult:
    """Deploy one series and survive ``epochs`` failure/repair cycles.

    The initial deployment comes from the shared
    :class:`~repro.experiments.runner.DeploymentCache` (same cell the
    figures use), then a :class:`~repro.core.restoration.RestorationSession`
    repairs the scheduled failures of :func:`epoch_failure` one epoch at a
    time.  ``warm=None`` defers to ``REPRO_RESTORE``.
    """
    if epochs < 1:
        raise ExperimentError(f"need at least one epoch, got {epochs}")
    if isinstance(series, str):
        series = series_by_name(series)
    cache = cache if cache is not None else DeploymentCache(setup)
    result = cache.get(series, k, seed)
    session = RestorationSession(
        cache.field(seed),
        setup.spec_for(series),
        result.deployment,
        k,
        series.method,
        warm=warm,
        region=setup.region,
        rng=np.random.default_rng(60_000 + seed),
        cell_size=setup.cell_size_for(series),
    )
    records: list[EpochRecord] = []
    with OBS.span("epoch-sweep", series=series.name, k=k, seed=seed,
                  epochs=epochs):
        for epoch in range(epochs):
            event = epoch_failure(
                session.deployment, setup.region, epoch, seed,
                radius=setup.disaster_radius,
            )
            report = session.restore(event)
            records.append(
                EpochRecord(
                    epoch=epoch,
                    kind=event.kind,
                    n_failed=event.n_failed,
                    extra_nodes=report.extra_nodes,
                    covered_after_failure=report.covered_after_failure,
                    covered_after_repair=report.covered_after_repair,
                    total_alive=session.deployment.n_alive,
                    complete=report.complete,
                )
            )
    return EpochSweepResult(
        series=series.name,
        method=series.method,
        k=k,
        seed=seed,
        warm=session.warm,
        records=tuple(records),
    )


def epoch_series(
    setup: ExperimentSetup,
    k: int,
    *,
    epochs: int = 3,
    warm: bool | None = None,
    cache: DeploymentCache | None = None,
    series_names: tuple[str, ...] | None = None,
) -> FigureResult:
    """Seed-averaged repair cost per failure epoch, per method series.

    The multi-epoch companion to Figure 14: x is the epoch index, y the
    mean number of extra nodes each epoch's repair needed.  Returned as a
    :class:`~repro.experiments.figures.FigureResult` so the standard
    table/JSON/CSV plumbing applies; the payload is bit-identical between
    warm and cold runs (``warm`` is deliberately kept out of the result).
    """
    cache = cache if cache is not None else DeploymentCache(setup)
    names = (
        tuple(series_names)
        if series_names is not None
        else tuple(s.name for s in SERIES)
    )
    xs = np.arange(epochs, dtype=float)
    out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name in names:
        per_seed = [
            run_epoch_sweep(
                setup, name, k, seed, epochs=epochs, warm=warm, cache=cache
            ).extra_nodes()
            for seed in range(setup.n_seeds)
        ]
        out[name] = (xs.copy(), np.mean(np.vstack(per_seed), axis=0))
    return FigureResult(
        "epochs",
        f"Repair cost per failure epoch, k = {k}",
        "failure epoch",
        "extra nodes needed",
        out,
        meta={
            "k": k,
            "epochs": epochs,
            "schedule": list(FAILURE_SCHEDULE),
            "disaster_radius": setup.disaster_radius,
        },
    )
