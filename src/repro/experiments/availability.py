"""Continuous-operation availability simulation.

The paper's setting is a long-lived, unattended network: nodes keep
failing (battery, weather, fauna), failures are noticed only after the
heartbeat timeout (§3.2), and replacements take real time to arrive
(a robot drives them out, §1).  The operational metric that summarises
all of it is **availability**: the fraction of time the field is fully
k-covered.

:func:`simulate_availability` runs that timeline analytically (no packet
simulation — the latencies enter as the §3.2 timeout and the dispatch
makespan, both already validated against the packet level elsewhere):

1. every alive node draws an exponential failure time (rate ``lambda``);
2. a failure silently degrades coverage; it is *detected* after the
   failure-detector timeout;
3. at detection, a repair campaign starts: the greedy computes the
   replacement sites and a robot fleet delivers them; the nodes come up
   after the dispatch makespan and immediately join the failure process;
4. repeat until the horizon.

Raising ``k`` buys availability twice over: the field tolerates failures
while repairs are pending, and campaigns are rarer.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.dispatch import plan_dispatch
from repro.core.centralized import centralized_greedy
from repro.errors import ConfigurationError
from repro.geometry.points import as_point, as_points
from repro.network.coverage import CoverageState
from repro.network.deployment import Deployment
from repro.network.spec import SensorSpec

__all__ = ["AvailabilityConfig", "AvailabilityReport", "simulate_availability"]


@dataclass(frozen=True)
class AvailabilityConfig:
    """Parameters of the continuous-operation simulation.

    Attributes
    ----------
    failure_rate:
        Per-node exponential failure rate (failures per unit time).
    detection_delay:
        Time from a failure to its detection (the §3.2 heartbeat timeout,
        ``timeout_factor * Tc``).
    n_robots, robot_speed:
        Repair-fleet parameters for the dispatch makespan.
    depot:
        Robot base position.
    horizon:
        Simulated time span.
    sla_k:
        The coverage degree whose continuity defines *availability*
        (default 1: "the field is being monitored at all").  Repairs are
        still triggered by, and restore, the deployment's design ``k`` —
        the redundancy margin between ``k`` and ``sla_k`` is exactly what
        keeps the SLA alive while campaigns are in flight (§2.1).
    """

    failure_rate: float = 0.001
    detection_delay: float = 2.5
    n_robots: int = 1
    robot_speed: float = 1.0
    depot: tuple[float, float] = (0.0, 0.0)
    horizon: float = 10_000.0
    sla_k: int = 1

    def __post_init__(self) -> None:
        if self.failure_rate <= 0:
            raise ConfigurationError("failure rate must be positive")
        if self.detection_delay < 0:
            raise ConfigurationError("detection delay must be non-negative")
        if self.n_robots < 1 or self.robot_speed <= 0:
            raise ConfigurationError("invalid robot fleet")
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if self.sla_k < 1:
            raise ConfigurationError("sla_k must be >= 1")


@dataclass
class AvailabilityReport:
    """Outcome of one availability run.

    Attributes
    ----------
    availability:
        Fraction of the horizon with full ``sla_k``-coverage.
    n_failures / n_campaigns / nodes_added:
        Totals over the horizon.
    outage_durations:
        Lengths of the individual not-fully-covered intervals.
    """

    availability: float
    n_failures: int
    n_campaigns: int
    nodes_added: int
    outage_durations: list[float] = field(default_factory=list)

    @property
    def mean_outage(self) -> float:
        if not self.outage_durations:
            return 0.0
        return float(np.mean(self.outage_durations))


def simulate_availability(
    field_points: np.ndarray,
    spec: SensorSpec,
    k: int,
    initial_positions: np.ndarray,
    config: AvailabilityConfig,
    rng: np.random.Generator,
) -> AvailabilityReport:
    """Run the failure/detect/repair timeline; see module docstring.

    Parameters
    ----------
    field_points, spec, k:
        The coverage problem; ``initial_positions`` must k-cover it.

    Notes
    -----
    Event kinds on the heap: ``(time, seq, "fail", node_id)`` and
    ``(time, seq, "repair", positions)``.  Repairs recompute the greedy at
    detection time against the then-current survivors, so overlapping
    failure bursts collapse into one campaign per detection event whose
    placement already accounts for everything known by then.
    """
    pts = as_points(field_points)
    deployment = Deployment(initial_positions)
    coverage = CoverageState.from_deployment(pts, spec.sensing_radius, deployment)
    if not coverage.is_fully_covered(k):
        raise ConfigurationError("the initial deployment must k-cover the field")
    depot = as_point(np.asarray(config.depot, dtype=float))

    heap: list[tuple[float, int, str, object]] = []
    seq = 0

    def push(time: float, kind: str, payload) -> None:
        nonlocal seq
        heapq.heappush(heap, (time, seq, kind, payload))
        seq += 1

    for nid in deployment.alive_ids():
        push(float(rng.exponential(1.0 / config.failure_rate)), "fail", int(nid))

    now = 0.0
    covered = True
    uncovered_since: float | None = None
    outages: list[float] = []
    n_failures = 0
    n_campaigns = 0
    nodes_added = 0
    uncovered_total = 0.0

    def note_coverage(time: float) -> None:
        nonlocal covered, uncovered_since, uncovered_total
        now_covered = coverage.is_fully_covered(config.sla_k)
        if covered and not now_covered:
            uncovered_since = time
            covered = False
        elif not covered and now_covered:
            assert uncovered_since is not None
            outages.append(time - uncovered_since)
            uncovered_total += time - uncovered_since
            uncovered_since = None
            covered = True

    while heap and heap[0][0] <= config.horizon:
        now, _, kind, payload = heapq.heappop(heap)
        if kind == "fail":
            nid = int(payload)  # type: ignore[arg-type]
            if not deployment.is_alive(nid):
                continue
            deployment.fail([nid])
            coverage.remove_sensor(nid)
            n_failures += 1
            note_coverage(now)
            if coverage.is_fully_covered(k):
                continue  # redundancy absorbed it; no campaign needed
            # detection, planning and delivery
            detect_at = now + config.detection_delay
            push(detect_at, "repair", None)
        elif kind == "repair":  # campaign starts at detection time
            if coverage.is_fully_covered(k):
                continue  # an earlier campaign already fixed everything
            n_campaigns += 1
            result = centralized_greedy(
                pts, spec, k,
                initial_positions=deployment.alive_positions(),
            )
            sites = result.trace.positions
            plan = plan_dispatch(
                sites, depot, n_robots=config.n_robots, speed=config.robot_speed
            )
            # nodes come up once the fleet has toured all sites
            # (per-site staging is below this model's fidelity)
            push(min(now + plan.makespan, config.horizon), "install", sites)
        else:  # install: the replacements come online
            sites = payload  # type: ignore[assignment]
            for pos in sites:
                nid = deployment.add(pos)
                coverage.add_sensor(nid, pos)
                nodes_added += 1
                push(
                    now + float(rng.exponential(1.0 / config.failure_rate)),
                    "fail",
                    int(nid),
                )
            note_coverage(now)

    # close the books at the horizon
    if not covered and uncovered_since is not None:
        outages.append(config.horizon - uncovered_since)
        uncovered_total += config.horizon - uncovered_since
    availability = 1.0 - uncovered_total / config.horizon
    return AvailabilityReport(
        availability=availability,
        n_failures=n_failures,
        n_campaigns=n_campaigns,
        nodes_added=nodes_added,
        outage_durations=outages,
    )
