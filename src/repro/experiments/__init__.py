"""The paper's evaluation (§4) as runnable, parameterised experiments.

* :class:`~repro.experiments.setup.ExperimentSetup` — the §4 constants
  (100x100 field, 2000 Halton points, rs = 4, 5x5 / 10x10 cells, rc = 8 /
  10·sqrt(2), 200 initial nodes, 5 seeds) plus a laptop-scale ``smoke``
  variant used by tests and default benchmarks.
* :data:`~repro.experiments.setup.SERIES` — the six method series every
  figure compares.
* :mod:`~repro.experiments.runner` — seed-averaged series execution with a
  per-process deployment cache (several figures reuse the same
  deployments).
* :mod:`~repro.experiments.figures` — ``fig07`` ... ``fig14``, one function
  per figure of the paper, each returning a :class:`FigureResult`.
* :mod:`~repro.experiments.tables` — aligned text rendering of results.
* :mod:`~repro.experiments.recording` — JSON/CSV persistence.
"""

from repro.experiments.setup import ExperimentSetup, Series, SERIES, series_by_name
from repro.experiments.runner import (
    DeploymentCache,
    field_model_for_seed,
    run_series,
)
from repro.experiments.figures import (
    FigureResult,
    fig07_coverage_vs_nodes,
    fig08_nodes_vs_k,
    fig09_redundancy,
    fig10_messages,
    fig11_random_failures,
    fig12_max_failures,
    fig13_area_failure,
    fig14_restoration,
    FIGURES,
)
from repro.experiments.epochs import (
    FAILURE_SCHEDULE,
    EpochRecord,
    EpochSweepResult,
    epoch_failure,
    epoch_series,
    run_epoch_sweep,
)
from repro.experiments.availability import (
    AvailabilityConfig,
    AvailabilityReport,
    simulate_availability,
)
from repro.experiments.summary import (
    MethodSummary,
    format_summary_table,
    method_summary,
)
from repro.experiments.tables import format_figure_table
from repro.experiments.recording import (
    figure_to_json,
    figure_from_json,
    figure_to_csv,
    figure_from_csv,
)
from repro.experiments.summary import SpanStats, TraceSummary, summarize_trace

__all__ = [
    "ExperimentSetup",
    "Series",
    "SERIES",
    "series_by_name",
    "DeploymentCache",
    "field_model_for_seed",
    "run_series",
    "FigureResult",
    "fig07_coverage_vs_nodes",
    "fig08_nodes_vs_k",
    "fig09_redundancy",
    "fig10_messages",
    "fig11_random_failures",
    "fig12_max_failures",
    "fig13_area_failure",
    "fig14_restoration",
    "FIGURES",
    "FAILURE_SCHEDULE",
    "EpochRecord",
    "EpochSweepResult",
    "epoch_failure",
    "epoch_series",
    "run_epoch_sweep",
    "AvailabilityConfig",
    "AvailabilityReport",
    "simulate_availability",
    "MethodSummary",
    "method_summary",
    "format_summary_table",
    "format_figure_table",
    "figure_to_json",
    "figure_from_json",
    "figure_to_csv",
    "figure_from_csv",
    "SpanStats",
    "TraceSummary",
    "summarize_trace",
]
