"""Renderings of fields, deployments and failures (ASCII and SVG)."""

from repro.viz.ascii_field import (
    render_points,
    render_coverage,
    render_deployment,
)
from repro.viz.svg_field import svg_field, save_svg
from repro.viz.timeline import svg_timeline

__all__ = [
    "render_points",
    "render_coverage",
    "render_deployment",
    "svg_field",
    "save_svg",
    "svg_timeline",
]
