"""Swim-lane SVG timelines of flight recordings.

Renders one run block of a flight recording (see
:mod:`repro.obs.flightrec`) as a nodes × simulation-time diagram: one
horizontal lane per node, message deliveries as arrows from the sender's
lane at send time to the receiver's lane at delivery time, losses as
dashed arrows ending in a cross, and protocol milestones (placements,
elections, failures, suspicions) as coloured marks on their node's lane.
The output is a complete standalone SVG document;
:func:`repro.viz.svg_field.save_svg` writes it to disk.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError

__all__ = ["svg_timeline"]

_LANE_H = 22.0
_MARGIN_L = 70.0
_MARGIN_R = 16.0
_MARGIN_T = 34.0
_MARGIN_B = 30.0

#: Mark colours per event kind (marked kinds only; timers are too dense).
_MARKS = {
    "start": "#7f8c8d",
    "placement": "#27ae60",
    "handoff": "#16a085",
    "elected": "#d4a017",
    "suspect": "#e67e22",
    "rescind": "#95a5a6",
    "fail": "#c0392b",
    "crash": "#c0392b",
    "restored": "#2980b9",
}


def _fmt(value: float) -> str:
    out = f"{value:.2f}".rstrip("0").rstrip(".")
    return "0" if out == "-0" else out


def _lane_label(node: int) -> str:
    return "env" if node < 0 else f"node {node}"


def svg_timeline(
    records: list[dict[str, Any]],
    *,
    run: int = 1,
    width: int = 960,
    include_timers: bool = False,
    title: str | None = None,
) -> str:
    """Render one run block of a flight recording as a swim-lane SVG.

    Parameters
    ----------
    records:
        A flight-record stream (headers and other runs are ignored).
    run:
        The 1-based run-block number to draw.
    width:
        Pixel width of the document; lane height is fixed, so the height
        follows the number of participating nodes.
    include_timers:
        Also mark ``timer_set``/``timer_fire`` events (dense; off by
        default).
    title:
        Caption; defaults to the run's protocol name.
    """
    from repro.analysis.flight import split_runs

    if width < 200:
        raise ConfigurationError(f"width too small for a timeline: {width}")
    blocks = [b for b in split_runs(records) if b["run"] == run]
    if not blocks:
        raise ConfigurationError(f"recording has no run block number {run}")
    block = blocks[0]
    events = [
        ev
        for ev in block["events"]
        if include_timers or ev.get("kind") not in ("timer_set", "timer_fire")
    ]

    nodes = sorted({int(ev["node"]) for ev in events})
    if not nodes:
        nodes = [0]
    lane_of = {n: i for i, n in enumerate(nodes)}
    t_values = [float(ev["t"]) for ev in events] or [0.0]
    t0, t1 = min(t_values), max(t_values)
    span = (t1 - t0) or 1.0
    plot_w = width - _MARGIN_L - _MARGIN_R
    height = int(_MARGIN_T + _LANE_H * len(nodes) + _MARGIN_B)

    def x_of(t: float) -> float:
        return _MARGIN_L + plot_w * (float(t) - t0) / span

    def y_of(node: int) -> float:
        return _MARGIN_T + _LANE_H * (lane_of[int(node)] + 0.5)

    caption = title or f"{block['protocol']} (run {run})"
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        'font-family="monospace" font-size="10">',
        f"<title>{caption}</title>",
        f'<rect x="0" y="0" width="{width}" height="{height}" fill="#fdfdfd"/>',
        f'<text x="{_fmt(_MARGIN_L)}" y="14" font-size="12">{caption}</text>',
    ]

    # lanes and labels
    for node in nodes:
        y = y_of(node)
        parts.append(
            f'<line x1="{_fmt(_MARGIN_L)}" y1="{_fmt(y)}" '
            f'x2="{_fmt(width - _MARGIN_R)}" y2="{_fmt(y)}" '
            'stroke="#d8dde2" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="6" y="{_fmt(y + 3)}" fill="#444">'
            f"{_lane_label(node)}</text>"
        )

    # time axis: a few round ticks along the bottom
    axis_y = _MARGIN_T + _LANE_H * len(nodes) + 12
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        t = t0 + span * frac
        x = x_of(t)
        parts.append(
            f'<line x1="{_fmt(x)}" y1="{_fmt(_MARGIN_T - 4)}" '
            f'x2="{_fmt(x)}" y2="{_fmt(axis_y - 10)}" '
            'stroke="#eef1f4" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_fmt(x - 8)}" y="{_fmt(axis_y)}" fill="#666">'
            f"t={_fmt(t)}</text>"
        )

    # message arrows: sender lane at send time -> receiver lane at event time
    by_id = {int(ev["id"]): ev for ev in block["events"]}
    for ev in events:
        kind = ev.get("kind")
        if kind not in ("deliver", "drop"):
            continue
        cause = ev.get("cause")
        send = by_id.get(cause) if cause is not None else None
        if send is None or send.get("kind") != "send":
            continue
        x1, y1 = x_of(send["t"]), y_of(send["node"])
        x2, y2 = x_of(ev["t"]), y_of(ev["node"])
        if kind == "deliver":
            style = 'stroke="#5b7fb4" stroke-width="0.8" opacity="0.7"'
        else:
            style = (
                'stroke="#c0392b" stroke-width="0.8" opacity="0.7" '
                'stroke-dasharray="3,2"'
            )
        parts.append(
            f'<line x1="{_fmt(x1)}" y1="{_fmt(y1)}" x2="{_fmt(x2)}" '
            f'y2="{_fmt(y2)}" {style}/>'
        )
        if kind == "drop":
            parts.append(
                f'<text x="{_fmt(x2 - 3)}" y="{_fmt(y2 + 3)}" '
                'fill="#c0392b" font-size="9">x</text>'
            )

    # event marks on their lanes
    for ev in events:
        kind = str(ev.get("kind"))
        x, y = x_of(ev["t"]), y_of(ev["node"])
        if kind == "send":
            parts.append(
                f'<circle cx="{_fmt(x)}" cy="{_fmt(y)}" r="1.6" '
                'fill="#34495e"/>'
            )
        elif kind == "deliver":
            parts.append(
                f'<circle cx="{_fmt(x)}" cy="{_fmt(y)}" r="1.6" '
                'fill="none" stroke="#34495e" stroke-width="0.8"/>'
            )
        elif kind in _MARKS:
            colour = _MARKS[kind]
            if kind in ("fail", "crash"):
                parts.append(
                    f'<path d="M {_fmt(x - 3)} {_fmt(y - 3)} L {_fmt(x + 3)} '
                    f'{_fmt(y + 3)} M {_fmt(x - 3)} {_fmt(y + 3)} '
                    f'L {_fmt(x + 3)} {_fmt(y - 3)}" '
                    f'stroke="{colour}" stroke-width="1.6"/>'
                )
            elif kind == "placement":
                parts.append(
                    f'<rect x="{_fmt(x - 2.5)}" y="{_fmt(y - 2.5)}" '
                    f'width="5" height="5" fill="{colour}"/>'
                )
            else:
                parts.append(
                    f'<circle cx="{_fmt(x)}" cy="{_fmt(y)}" r="2.6" '
                    f'fill="{colour}" opacity="0.9"/>'
                )
        elif kind in ("timer_set", "timer_fire"):
            parts.append(
                f'<circle cx="{_fmt(x)}" cy="{_fmt(y)}" r="1" '
                'fill="#b7bec5"/>'
            )

    # minimal legend for the non-obvious marks
    lx = width - _MARGIN_R - 230.0
    parts.append(
        f'<text x="{_fmt(lx)}" y="14" fill="#666">'
        "squares=placements, x=failures, dashed=losses</text>"
    )

    parts.append("</svg>")
    return "\n".join(parts)
