"""Unicode sparklines: a numeric series as one line of block characters.

The rendering primitive behind ``decor top``: each value maps to one of
eight block glyphs scaled between the series minimum and maximum, so a
health trajectory reads at a glance in any terminal.  Pure string
formatting — no terminal control, no dependencies.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["BLOCKS", "sparkline"]

#: The eight block glyphs, lowest to highest.
BLOCKS = "▁▂▃▄▅▆▇█"


def _resample(values: Sequence[float], width: int) -> list[float]:
    """Reduce ``values`` to at most ``width`` points (last value per bin)."""
    n = len(values)
    if n <= width:
        return list(values)
    out: list[float] = []
    for i in range(width):
        hi = ((i + 1) * n) // width
        out.append(values[hi - 1])
    return out


def sparkline(values: Sequence[float], *, width: int = 60) -> str:
    """Render a series as block characters.

    Values are scaled between the series min and max; flat series render
    mid-height, non-finite values as spaces.  Series longer than ``width``
    are resampled (keeping each bin's last value) so recent structure
    survives.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▆█'
    >>> sparkline([5, 5, 5])
    '▄▄▄'
    >>> sparkline([])
    ''
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    pts = [float(v) for v in _resample(values, width)]
    finite = [v for v in pts if math.isfinite(v)]
    if not finite:
        return " " * len(pts)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars: list[str] = []
    for v in pts:
        if not math.isfinite(v):
            chars.append(" ")
        elif span == 0:
            chars.append(BLOCKS[3])
        else:
            idx = int((v - lo) / span * (len(BLOCKS) - 1) + 0.5)
            chars.append(BLOCKS[idx])
    return "".join(chars)
