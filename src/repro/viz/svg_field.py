"""Standalone SVG renderings of fields, deployments and disasters.

Dependency-free vector output for reports: field points as dots, sensors
as translucent sensing discs, an optional disaster outline, and optional
robot tours from :mod:`repro.analysis.dispatch`.  The string is a complete
SVG document; :func:`save_svg` writes it to disk.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.points import as_point, as_points
from repro.geometry.region import Rect

__all__ = ["svg_field", "save_svg"]

_STYLE = {
    "field_point": 'fill="#607080" opacity="0.8"',
    "sensor_disc": 'fill="#2f7ed8" opacity="0.12" stroke="#2f7ed8" '
                   'stroke-opacity="0.35" stroke-width="0.15"',
    "sensor_dot": 'fill="#1a4f9c"',
    "disaster": 'fill="none" stroke="#c0392b" stroke-width="0.6" '
                'stroke-dasharray="2,1.2"',
    "tour": 'fill="none" stroke="#27ae60" stroke-width="0.35" opacity="0.85"',
    "frame": 'fill="none" stroke="#222" stroke-width="0.4"',
}


def _fmt(value: float) -> str:
    out = f"{value:.3f}".rstrip("0").rstrip(".")
    return "0" if out == "-0" else out


def svg_field(
    region: Rect,
    *,
    field_points: np.ndarray | None = None,
    sensors: np.ndarray | None = None,
    rs: float | None = None,
    disaster: tuple[np.ndarray, float] | None = None,
    tours: list[np.ndarray] | None = None,
    depot: np.ndarray | None = None,
    width: int = 640,
    title: str | None = None,
) -> str:
    """Render the scene to a complete SVG document string.

    Parameters
    ----------
    region:
        The monitored rectangle; becomes the drawing's coordinate system
        (y is flipped so north is up).
    field_points:
        Optional ``(n, 2)`` approximation points (small dots).
    sensors:
        Optional ``(m, 2)`` sensor positions; with ``rs`` given, each also
        draws its translucent sensing disc.
    disaster:
        Optional ``(center, radius)`` outline.
    tours:
        Optional list of ``(k_i, 2)`` robot tour polylines (coordinates,
        not indices); drawn depot -> sites -> depot when ``depot`` given.
    width:
        Pixel width; height follows the region's aspect ratio.
    """
    if width < 1:
        raise ConfigurationError(f"width must be positive, got {width}")
    height = int(round(width * region.height / region.width))
    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="{_fmt(region.x0)} {_fmt(-region.y1)} '
        f'{_fmt(region.width)} {_fmt(region.height)}">'
    ]
    if title:
        parts.append(f"<title>{title}</title>")
    # y-flip: drawn coordinates use (x, -y)
    parts.append(
        f'<rect x="{_fmt(region.x0)}" y="{_fmt(-region.y1)}" '
        f'width="{_fmt(region.width)}" height="{_fmt(region.height)}" '
        f'{_STYLE["frame"]}/>'
    )
    if field_points is not None:
        pts = as_points(field_points)
        r = max(region.width, region.height) / 400.0
        for x, y in pts:
            parts.append(
                f'<circle cx="{_fmt(x)}" cy="{_fmt(-y)}" r="{_fmt(r)}" '
                f'{_STYLE["field_point"]}/>'
            )
    if sensors is not None:
        sens = as_points(sensors)
        if rs is not None:
            if rs <= 0:
                raise ConfigurationError(f"rs must be positive, got {rs}")
            for x, y in sens:
                parts.append(
                    f'<circle cx="{_fmt(x)}" cy="{_fmt(-y)}" r="{_fmt(rs)}" '
                    f'{_STYLE["sensor_disc"]}/>'
                )
        dot = max(region.width, region.height) / 250.0
        for x, y in sens:
            parts.append(
                f'<circle cx="{_fmt(x)}" cy="{_fmt(-y)}" r="{_fmt(dot)}" '
                f'{_STYLE["sensor_dot"]}/>'
            )
    if tours:
        for tour in tours:
            coords = as_points(tour)
            if depot is not None:
                dp = as_point(depot).reshape(1, 2)
                coords = np.vstack([dp, coords, dp])
            if len(coords) < 2:
                continue
            pts_attr = " ".join(f"{_fmt(x)},{_fmt(-y)}" for x, y in coords)
            parts.append(f'<polyline points="{pts_attr}" {_STYLE["tour"]}/>')
    if disaster is not None:
        center, radius = disaster
        c = as_point(center)
        if radius <= 0:
            raise ConfigurationError(f"disaster radius must be positive, got {radius}")
        parts.append(
            f'<circle cx="{_fmt(c[0])}" cy="{_fmt(-c[1])}" r="{_fmt(radius)}" '
            f'{_STYLE["disaster"]}/>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(path: str, document: str) -> None:
    """Write an SVG document (from :func:`svg_field`) to ``path``."""
    if not document.lstrip().startswith("<svg"):
        raise ConfigurationError("not an SVG document")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(document)
