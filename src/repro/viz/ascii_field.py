"""ASCII renderings of the sensor field.

Reproduces the paper's illustrative figures in the terminal: Figure 4 (a
field approximated with Halton points), Figure 5 (a DECOR deployment) and
Figure 6 (an uncovered disaster area).  Each renderer rasterises onto a
character grid with y increasing upward (row 0 printed last).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.coverage_map import coverage_raster
from repro.errors import ConfigurationError
from repro.geometry.points import as_points
from repro.geometry.region import Rect

__all__ = ["render_points", "render_coverage", "render_deployment"]

#: Density ramp for coverage counts 0, 1, 2, ...
_RAMP = " .:-=+*#%@"


def _empty_canvas(width: int, height: int) -> list[list[str]]:
    return [[" "] * width for _ in range(height)]


def _paint_points(
    canvas: list[list[str]],
    region: Rect,
    points: np.ndarray,
    char: str,
) -> None:
    width, height = len(canvas[0]), len(canvas)
    pts = as_points(points)
    if len(pts) == 0:
        return
    ix = np.clip(
        ((pts[:, 0] - region.x0) / region.width * width).astype(int), 0, width - 1
    )
    iy = np.clip(
        ((pts[:, 1] - region.y0) / region.height * height).astype(int), 0, height - 1
    )
    for x, y in zip(ix, iy):
        canvas[y][x] = char


def _frame(canvas: list[list[str]], title: str) -> str:
    width = len(canvas[0])
    top = "+" + "-" * width + "+"
    body = ["|" + "".join(row) + "|" for row in reversed(canvas)]
    return "\n".join([title, top, *body, top])


def render_points(
    region: Rect, points: np.ndarray, *, width: int = 60, height: int = 30,
    title: str = "field points",
) -> str:
    """Render a point set (paper Figure 4)."""
    if width < 1 or height < 1:
        raise ConfigurationError("canvas dimensions must be positive")
    canvas = _empty_canvas(width, height)
    _paint_points(canvas, region, points, ".")
    return _frame(canvas, title)


def render_deployment(
    region: Rect,
    field_points: np.ndarray,
    sensor_positions: np.ndarray,
    *,
    width: int = 60,
    height: int = 30,
    title: str = "deployment",
) -> str:
    """Render sensors over the field approximation (paper Figure 5)."""
    canvas = _empty_canvas(width, height)
    _paint_points(canvas, region, field_points, ".")
    _paint_points(canvas, region, sensor_positions, "o")
    return _frame(canvas, title)


def render_coverage(
    region: Rect,
    sensor_positions: np.ndarray,
    rs: float,
    *,
    width: int = 60,
    height: int = 30,
    k: int | None = None,
    title: str = "coverage",
) -> str:
    """Render the coverage-count field (paper Figure 6 when holes exist).

    With ``k`` given, cells below ``k`` render as ``!`` (uncovered) and the
    rest by density; otherwise the raw count density ramp is used.
    """
    raster = coverage_raster(region, sensor_positions, rs, resolution=max(width, height))
    # resample the square raster onto the canvas aspect
    ys = np.linspace(0, raster.shape[0] - 1, height).astype(int)
    xs = np.linspace(0, raster.shape[1] - 1, width).astype(int)
    grid = raster[np.ix_(ys, xs)]
    canvas = _empty_canvas(width, height)
    for iy in range(height):
        for ix in range(width):
            c = int(grid[iy, ix])
            if k is not None and c < k:
                canvas[iy][ix] = "!"
            else:
                canvas[iy][ix] = _RAMP[min(c, len(_RAMP) - 1)]
    return _frame(canvas, title)
