"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the reproduction with a single ``except``
clause while still distinguishing configuration mistakes from runtime
failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "GeometryError",
    "CoverageError",
    "PlacementError",
    "SimulationError",
    "ExperimentError",
    "ObservabilityError",
    "InvariantError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter combination was supplied (e.g. ``rs > rc``)."""


class GeometryError(ReproError, ValueError):
    """A geometric primitive was constructed or queried inconsistently."""


class CoverageError(ReproError, RuntimeError):
    """The coverage state was mutated inconsistently (e.g. double removal)."""


class PlacementError(ReproError, RuntimeError):
    """A placement algorithm could not make progress or exceeded its budget."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation reached an inconsistent state."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment definition was invalid or produced unusable output."""


class ObservabilityError(ReproError, RuntimeError):
    """The instrumentation layer was misused (mismatched spans, type clash)."""


class InvariantError(ReproError, RuntimeError):
    """A runtime invariant checked by :mod:`repro.checks.contracts` failed.

    Raised only when the sanitizer is enabled (``REPRO_CHECKS=1``); the
    message names the violated invariant and the offending step so the
    failure points at the mutation site, not at a later symptom.
    """

    def __init__(self, invariant: str, detail: str, *, step: int | None = None):
        self.invariant = invariant
        self.step = step
        where = "" if step is None else f" at step {step}"
        super().__init__(f"invariant {invariant!r} violated{where}: {detail}")
