"""DECOR — DEpendable COverage Restoration for wireless sensor networks.

A faithful, from-scratch reproduction of *"Distributed, Reliable Restoration
Techniques using Wireless Sensor Devices"* (Drougas & Kalogeraki, IPPS 2007):
k-coverage restoration of a planar sensor field using discrepancy-theoretic
field approximation and greedy benefit-driven node placement, in centralized,
grid-cell and local-Voronoi distributed variants.

Quickstart
----------
>>> import repro
>>> planner = repro.DecorPlanner(repro.Rect.square(50.0),
...                              repro.SensorSpec(4.0, 8.0), n_points=500)
>>> result = planner.deploy(k=2, method="voronoi")
>>> result.final_covered_fraction()
1.0

Subpackages
-----------
``repro.geometry``
    Regions, neighbour search, grid partitions, Voronoi ownership.
``repro.field``
    Shared, memoised spatial model (indices, adjacencies, partitions)
    with pluggable neighbour-search backends.
``repro.discrepancy``
    Halton/Hammersley/random point sets and star discrepancy.
``repro.network``
    Sensor model, deployments, coverage counts, failures, reliability.
``repro.core``
    The DECOR algorithms, baselines, redundancy and restoration.
``repro.sim``
    Discrete-event simulation substrate (radio, heartbeats, election).
``repro.analysis``
    Lifetime scheduling, intruder detection, deployment metrics.
``repro.experiments``
    The paper's evaluation (Figures 7-14) as runnable experiments.
"""

from repro._version import __version__
from repro.errors import (
    ConfigurationError,
    CoverageError,
    ExperimentError,
    GeometryError,
    PlacementError,
    ReproError,
    SimulationError,
)
from repro.geometry import Rect, GridPartition
from repro.field import FieldModel, as_field_model, available_backends
from repro.discrepancy import halton, hammersley, field_points
from repro.network import (
    CoverageState,
    Deployment,
    SensorSpec,
    area_failure,
    random_failures,
    required_k,
)
from repro.core import (
    DecorPlanner,
    DeploymentResult,
    RestorationReport,
    centralized_greedy,
    grid_decor,
    random_placement,
    redundancy_fraction,
    redundant_nodes,
    restore,
    run_method,
    voronoi_decor,
)

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "GeometryError",
    "CoverageError",
    "PlacementError",
    "SimulationError",
    "ExperimentError",
    # geometry / field
    "Rect",
    "GridPartition",
    "FieldModel",
    "as_field_model",
    "available_backends",
    "halton",
    "hammersley",
    "field_points",
    # network model
    "SensorSpec",
    "Deployment",
    "CoverageState",
    "random_failures",
    "area_failure",
    "required_k",
    # algorithms
    "DecorPlanner",
    "DeploymentResult",
    "RestorationReport",
    "centralized_greedy",
    "grid_decor",
    "voronoi_decor",
    "random_placement",
    "redundant_nodes",
    "redundancy_fraction",
    "restore",
    "run_method",
]
