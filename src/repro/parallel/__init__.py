"""Process-parallel fan-out of (series, k, seed) deployment cells.

A figure suite's unit of work is one *cell*: run one series at one
``(k, seed)`` and memoise the result in a
:class:`~repro.experiments.runner.DeploymentCache`.  Cells are mutually
independent — each derives everything from its own seeds — so a sweep
can shard them across worker processes.

The package splits the machinery by ownership:

* :mod:`repro.parallel.pool` — the persistent :class:`WorkerPool`
  (chunk scheduling, buffered in-order absorption, lifecycle) and the
  :func:`prefill_cache` entry point every caller funnels through.
* :mod:`repro.parallel.shm` — shared-memory posting of per-seed
  FieldModel arrays (parent creates/unlinks, workers attach views).

Design rules, each load-bearing for reproducibility:

* **Deterministic merge.**  Results are folded back in *submission*
  order, never completion order, so the parent cache — and any OBS
  telemetry merged along the way — is bit-identical to a serial run
  regardless of worker scheduling.
* **Per-worker state.**  Each worker owns a private ``DeploymentCache``;
  only read-only shared-memory array views are shared.
* **No hidden randomness.**  Workers derive every stochastic choice
  from the cell's seed, exactly as the serial path does.  The PAR001
  flow check forbids un-seeded RNG construction anywhere in this
  package, and FLOW002 (:mod:`repro.checks.flow`) extends the ban down
  the whole call tree of every worker-submitted function.
* **OBS by seam only.**  Workers capture their telemetry through
  :class:`~repro.obs.bridge.capture_worker_obs` and the parent folds it
  in with :func:`~repro.obs.bridge.merge_worker_obs`; this package
  never enables, disables or resets the global runtime itself (also
  PAR001).

Serial semantics are the default: ``workers=None`` (or ``<= 1``, or a
single pending cell) runs in-process with no executor, so the parallel
path is pure opt-in via the CLI's ``--workers N``.
"""

from repro.parallel.pool import (
    Cell,
    WorkerPool,
    normalize_cells,
    plan_chunks,
    prefill_cache,
)
from repro.parallel.shm import SharedFieldStore

__all__ = [
    "Cell",
    "SharedFieldStore",
    "WorkerPool",
    "normalize_cells",
    "plan_chunks",
    "prefill_cache",
]
