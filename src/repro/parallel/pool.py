"""Persistent worker pool with shared-memory payloads and chunk scheduling.

The fan-out unit is still the ``(series, k, seed)`` *cell*
(:data:`Cell`), but three things changed versus the original throwaway
per-batch executor, each attacking a measured cost:

* **Persistence.**  A :class:`WorkerPool` owns one
  :class:`~concurrent.futures.ProcessPoolExecutor` for its whole
  lifetime; figures, series sweeps and CLI invocations submit into the
  same warm processes instead of paying fork + cache construction per
  batch.
* **Shared memory.**  Per-seed FieldModel arrays are posted once into
  :mod:`repro.parallel.shm` segments; tasks carry only a tiny manifest
  and workers map read-only views (see ``docs/performance.md`` for the
  payload layout and the measured bytes-per-cell reduction).
* **Chunk scheduling with buffered in-order absorption.**  Pending
  cells are grouped into contiguous, size-aware chunks
  (:func:`plan_chunks`), harvested as they complete, and *absorbed* in
  submission order through :class:`_InOrderDrain` — a slow chunk delays
  only the merge of its successors, never the execution of anything,
  and the merge order (hence every figure byte and telemetry stream)
  is identical to a serial run.

The reproducibility rules of the original module are unchanged and
still enforced by PAR001/FLOW002: deterministic submission-order merge,
per-worker private caches, no hidden randomness, worker OBS state moves
only through the :mod:`repro.obs.bridge` seam.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import Future, ProcessPoolExecutor, as_completed
from multiprocessing import resource_tracker
from typing import TYPE_CHECKING, Any, Iterable, Sequence, TypeVar

from repro.checks import CHECKS
from repro.errors import ConfigurationError
from repro.obs import FREC, LEDGER, OBS, capture_worker_obs, merge_worker_obs
from repro.parallel.shm import Manifest, SharedFieldStore, build_field_model

if TYPE_CHECKING:
    from repro.core.result import DeploymentResult
    from repro.experiments.runner import DeploymentCache
    from repro.experiments.setup import ExperimentSetup
    from repro.geometry.region import Rect

__all__ = [
    "Cell",
    "WorkerPool",
    "normalize_cells",
    "plan_chunks",
    "prefill_cache",
]

#: One unit of parallel work: ``(series_name, k, seed)``.
Cell = tuple[str, int, int]

#: Chunks submitted per worker slot; finer chunks smooth out load
#: imbalance at the cost of a little more per-task overhead.
CHUNK_OVERSUBSCRIBE = 4

#: Per-process worker state, populated once by :func:`_worker_init`.
_WORKER: dict[str, Any] = {}

_T = TypeVar("_T")


def normalize_cells(cells: Iterable[Sequence[Any]]) -> list[Cell]:
    """Canonicalise cell specs: name strings, int k/seed, duplicates dropped.

    Order is preserved (first occurrence wins) — the deterministic merge
    depends on it.  Series objects are accepted in place of their names.

    >>> normalize_cells([("grid-small", 2, 0), ("grid-small", 2.0, 0)])
    [('grid-small', 2, 0)]
    """
    out: dict[Cell, None] = {}
    for spec in cells:
        series, k, seed = spec
        name = getattr(series, "name", series)
        out.setdefault((str(name), int(k), int(seed)), None)
    return list(out)


def plan_chunks(
    cells: Sequence[Cell],
    workers: int,
    *,
    oversubscribe: int = CHUNK_OVERSUBSCRIBE,
) -> list[list[Cell]]:
    """Group pending cells into contiguous, size-aware chunks.

    Chunks are contiguous slices of the submission order (so absorbing
    chunk results in chunk order *is* absorbing cells in cell order),
    weighted by each cell's ``k`` — the greedy loop places ~k times the
    sensors, so k is a cheap, deterministic proxy for cell cost.  The
    chunk count targets ``workers * oversubscribe`` so stragglers can't
    idle the pool, and every boundary aims at a fair share of the
    *remaining* weight, keeping the last chunks from going thin.

    >>> cells = [("s", k, 0) for k in (1, 2, 3, 4, 5)]
    >>> [len(c) for c in plan_chunks(cells, 2, oversubscribe=1)]
    [4, 1]
    """
    if workers <= 1 or len(cells) <= 1:
        return [list(cells)]
    n_chunks = min(len(cells), max(1, workers * oversubscribe))
    weights = [max(1, int(k)) for _, k, _ in cells]
    remaining = float(sum(weights))
    chunks: list[list[Cell]] = []
    current: list[Cell] = []
    acc = 0.0
    for cell, weight in zip(cells, weights):
        current.append(cell)
        acc += weight
        chunks_left = n_chunks - len(chunks)
        if chunks_left > 1 and acc >= remaining / chunks_left:
            chunks.append(current)
            remaining -= acc
            current, acc = [], 0.0
    if current:
        chunks.append(current)
    return chunks


class _InOrderDrain:
    """Buffer out-of-order completions; release in submission order.

    The fix for the head-of-line blocking the original ``prefill_cache``
    had: it waited on ``futures[0]`` even when later futures had long
    finished, so one slow cell stalled the telemetry merge for every
    completed one.  ``push(index, item)`` files a completion and returns
    the (possibly empty) run of items that just became releasable.

    >>> drain = _InOrderDrain()
    >>> drain.push(2, "c"), drain.push(0, "a"), drain.push(1, "b")
    ([], ['a'], ['b', 'c'])
    """

    def __init__(self) -> None:
        self._next = 0
        self._buffered: dict[int, Any] = {}

    @property
    def pending(self) -> int:
        return len(self._buffered)

    def push(self, index: int, item: _T) -> list[_T]:
        if index < self._next or index in self._buffered:
            raise ConfigurationError(
                f"completion index {index} already drained or buffered"
            )
        self._buffered[index] = item
        released: list[_T] = []
        while self._next in self._buffered:
            released.append(self._buffered.pop(self._next))
            self._next += 1
        return released


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


def _worker_init(
    setup: "ExperimentSetup",
    use_initial: bool,
    backend: str | None,
    checks_enabled: bool,
) -> None:
    """Build this worker's private cache; runs once per worker process.

    Observability flags deliberately do *not* ride in here: the pool
    outlives OBS enable/disable transitions in the parent, so they are
    per-chunk arguments instead.
    """
    from repro.experiments.runner import DeploymentCache

    if checks_enabled:
        CHECKS.enable()
    _WORKER["cache"] = DeploymentCache(
        setup, use_initial=use_initial, backend=backend
    )


def _worker_ping() -> int:
    """No-op worker round-trip; forces process spawn during warm-up."""
    return os.getpid()


def _worker_run_chunk(
    chunk: list[Cell],
    manifests: list[Manifest],
    obs_enabled: bool,
    frec_enabled: bool,
    obs_sample: float | None,
) -> tuple[list[Cell], list["DeploymentResult"], dict[str, Any] | None]:
    """Run one chunk of cells; ship results plus captured telemetry.

    Fields arrive as shared-memory manifests and are adopted into the
    worker cache once per seed (they persist across chunks and batches).
    Results do not: ``drop_results`` runs even on failure, so every cell
    the parent ever submits is computed fresh — a worker cache hit would
    skip the cell's telemetry and silently diverge from the serial
    stream — and worker memory stays bounded by one chunk.
    """
    cache: "DeploymentCache" = _WORKER["cache"]
    for manifest in manifests:
        if not cache.has_field(manifest["seed"]):
            cache.adopt_field(manifest["seed"], build_field_model(manifest))
    try:
        with capture_worker_obs(
            obs_enabled, frec_enabled, sample=obs_sample
        ) as cap:
            results = [cache.get(*cell) for cell in chunk]
    finally:
        cache.drop_results()
    return chunk, results, cap.payload()


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


def _grid_partitions(
    setup: "ExperimentSetup", todo: Sequence[Cell]
) -> tuple[tuple["Rect", float], ...]:
    """The grid decompositions the batch's series will ask the field for."""
    from repro.experiments.setup import series_by_name

    sizes: set[float] = set()
    for name in sorted({name for name, _, _ in todo}):
        try:
            series = series_by_name(name)
        except ConfigurationError:
            # unknown series stay the *worker's* error to raise, at the
            # cell's position in the merge order, like every other failure
            continue
        size = setup.cell_size_for(series)
        if series.method == "grid" and size is not None:
            sizes.add(float(size))
    return tuple((setup.region, size) for size in sorted(sizes))


class WorkerPool:
    """A persistent, shared-memory process pool for experiment cells.

    Create once (optionally via :meth:`for_cache`), reuse across every
    figure/series batch of a run, and close deterministically — as a
    context manager, by calling :meth:`close`, or at worst through the
    ``atexit`` hook registered on construction.  All three paths shut
    the executor down and unlink every shared segment; the lifecycle
    regression tests assert no ``/dev/shm`` residue and no orphaned
    worker processes survive exceptions or ``KeyboardInterrupt``.

    The pool is bound to one cache configuration (setup, ``use_initial``,
    backend); :meth:`prefill` refuses a mismatched cache rather than
    silently computing cells under the wrong setup.
    """

    def __init__(
        self,
        setup: "ExperimentSetup",
        workers: int | None = None,
        *,
        use_initial: bool = False,
        backend: str | None = None,
    ) -> None:
        if workers is not None and workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        self._setup = setup
        self._workers = 0 if workers is None else int(workers)
        self._use_initial = bool(use_initial)
        self._backend = backend
        self._store = SharedFieldStore()
        self._executor: ProcessPoolExecutor | None = None
        self._closed = False
        atexit.register(self.close)

    @classmethod
    def for_cache(
        cls, cache: "DeploymentCache", *, workers: int | None
    ) -> "WorkerPool":
        """A pool matching one cache's configuration."""
        return cls(
            cache.setup,
            workers,
            use_initial=cache.use_initial,
            backend=cache.backend,
        )

    def matches(self, cache: "DeploymentCache") -> bool:
        """Whether ``cache`` runs cells under this pool's configuration."""
        return (
            cache.setup == self._setup
            and bool(cache.use_initial) == self._use_initial
            and cache.backend == self._backend
        )

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def store(self) -> SharedFieldStore:
        """The shared-memory segment registry (parent-owned)."""
        return self._store

    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes (empty before first use)."""
        if self._executor is None:
            return []
        return sorted(
            pid for pid in self._executor._processes if pid is not None
        )

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut workers down and unlink every shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
        self._store.close()

    def warm_up(self) -> None:
        """Spawn the worker processes eagerly (optional, idempotent).

        Pings force the executor to start its workers now instead of on
        the first real batch, so wall-clock benchmarks can separate fork
        + interpreter start-up from per-cell compute.  A no-op for
        serial pools.
        """
        if self._workers <= 1:
            return
        executor = self._ensure_executor()
        for future in [
            executor.submit(_worker_ping) for _ in range(self._workers)
        ]:
            future.result()

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._closed:
            raise ConfigurationError("worker pool is closed")
        if self._executor is None:
            # Start the shared-memory resource tracker *before* forking
            # workers: children then inherit the parent's tracker pipe,
            # so attach-side registrations and the parent's unlinks
            # balance in one cache.  A worker forked without the pipe
            # spawns a private tracker that, at worker exit, "cleans up"
            # every segment the worker ever attached — unlinking live
            # parent segments out from under a later batch.
            resource_tracker.ensure_running()
            self._executor = ProcessPoolExecutor(
                max_workers=self._workers,
                initializer=_worker_init,
                initargs=(
                    self._setup,
                    self._use_initial,
                    self._backend,
                    CHECKS.enabled,
                ),
            )
        return self._executor

    def prefill(
        self, cache: "DeploymentCache", cells: Iterable[Sequence[Any]]
    ) -> int:
        """Fill ``cache`` with every pending cell; returns the number computed.

        Serial fallback (no executor, no segments) when the pool has
        ``workers <= 1`` or only one cell is pending — byte-for-byte the
        behaviour of calling ``cache.get`` in a loop.  Otherwise fields
        are published to shared memory (first batch per seed only),
        cells are chunked, and completions are absorbed in submission
        order.  A worker exception propagates in submission order too:
        chunks before it are absorbed, chunks after it are discarded.
        """
        if self._closed:
            raise ConfigurationError("worker pool is closed")
        if not self.matches(cache):
            raise ConfigurationError(
                "pool was created for a different cache configuration "
                "(setup/use_initial/backend must match)"
            )
        todo = [c for c in normalize_cells(cells) if c not in cache]
        if not todo:
            return 0
        if self._workers <= 1 or len(todo) == 1:
            for cell in todo:
                cache.get(*cell)
            return len(todo)

        chunks = plan_chunks(todo, self._workers)
        obs_enabled = OBS.enabled
        frec_enabled = FREC.enabled
        # the parent's sampling period rides along so worker rows merge
        # into the same timeline; the sampler is only touched via the bridge
        obs_sample = (
            OBS.sampler.period
            if obs_enabled and OBS.sampler is not None
            else None
        )
        bytes_before = self._store.shared_bytes
        with OBS.span("prefill", cells=len(todo), workers=self._workers):
            partitions = _grid_partitions(self._setup, todo)
            # LEDGER.stage is a null context when the run ledger is off
            # (the OBS.span pattern); enabled, the parent's publish and
            # compute walls land in the invocation's ledger row
            with LEDGER.stage("pool_publish"):
                manifests = {
                    seed: self._store.publish_field(
                        seed,
                        cache.field(seed),
                        radii=(self._setup.rs,),
                        partitions=partitions,
                    )
                    for seed in sorted({seed for _, _, seed in todo})
                }
            executor = self._ensure_executor()
            with LEDGER.stage("pool_compute"):
                futures: list[Future[Any]] = [
                    executor.submit(
                        _worker_run_chunk,
                        chunk,
                        [manifests[s] for s in sorted({c[2] for c in chunk})],
                        obs_enabled,
                        frec_enabled,
                        obs_sample,
                    )
                    for chunk in chunks
                ]
                order = {future: i for i, future in enumerate(futures)}
                drain = _InOrderDrain()
                # harvest as completed, absorb in submission order: a slow
                # chunk buffers its successors instead of blocking the merge
                for future in as_completed(futures):
                    for ready in drain.push(order[future], future):
                        chunk_cells, results, payload = ready.result()
                        for cell, result in zip(chunk_cells, results):
                            cache.absorb(*cell, result)
                        if obs_enabled or frec_enabled:
                            merge_worker_obs(payload)
        if OBS.enabled:
            OBS.counter("parallel_cells_total").inc(len(todo))
            OBS.counter("parallel_batches_total").inc()
            OBS.counter("parallel_chunks_total").inc(len(chunks))
            posted = self._store.shared_bytes - bytes_before
            if posted:
                OBS.counter("parallel_shm_bytes_total").inc(posted)
        return len(todo)


def prefill_cache(
    cache: "DeploymentCache",
    cells: Iterable[Sequence[Any]],
    *,
    workers: int | None = None,
    pool: WorkerPool | None = None,
) -> int:
    """Fill ``cache`` with every cell's result; returns the number computed.

    Cells already cached are skipped.  With a ``pool``, the batch runs on
    that (persistent) pool.  Otherwise ``workers`` in ``(None, 0, 1)`` —
    or a single pending cell — runs serially in-process, byte-for-byte
    the behaviour of calling ``cache.get`` in a loop, and ``workers >=
    2`` runs the batch on a transient pool torn down before returning.

    A worker exception propagates to the caller unchanged (submission
    order); the cache keeps whatever results were absorbed before it.
    """
    if pool is not None:
        return pool.prefill(cache, cells)
    if workers is not None and workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    n_workers = 0 if workers is None else int(workers)
    todo = [c for c in normalize_cells(cells) if c not in cache]
    if not todo:
        return 0
    if n_workers <= 1 or len(todo) == 1:
        for cell in todo:
            cache.get(*cell)
        return len(todo)
    with WorkerPool.for_cache(
        cache, workers=min(n_workers, len(todo))
    ) as transient:
        return transient.prefill(cache, cells)
