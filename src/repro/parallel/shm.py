"""Shared-memory posting of FieldModel array payloads.

The old fan-out shipped nothing to workers — and therefore shipped
*everything*: each worker rebuilt its own per-seed
:class:`~repro.field.FieldModel` (KD-tree, ``rs`` adjacency, grid
decomposition) from scratch, and the alternative — pickling the parent's
model into every task — moves megabytes per cell through the executor's
pipes.  This module is the third option: the parent posts each field's
arrays (points, CSR ``data``/``indices``/``indptr``, cell assignments)
into :mod:`multiprocessing.shared_memory` segments **once per (field,
seed)**, and workers map read-only views over the same physical pages.
What crosses the pipe per task is a :class:`Manifest` of segment names
and dtypes — a few hundred bytes.

Ownership discipline (the part the lifecycle tests pin down):

* The **parent** :class:`SharedFieldStore` creates every segment and is
  the only place that ever calls ``unlink`` — at :meth:`~
  SharedFieldStore.close`, from the pool's context-manager exit or its
  ``atexit`` hook.
* **Workers** only attach and ``close`` their maps.  Under the fork
  start method they share the parent's resource tracker, so the
  attach-side registrations and the parent-side unlink balance out and
  nothing is left in ``/dev/shm`` (asserted by
  ``tests/test_worker_pool.py``).

Segment names are derived from the parent pid plus a sequence counter —
no entropy source (DET002) — with a ``FileExistsError`` retry for the
pid-reuse corner.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from itertools import count
from multiprocessing import shared_memory
from typing import Any

import numpy as np
from scipy import sparse

from repro.field import FieldModel
from repro.field.model import _partition_key
from repro.geometry.region import Rect

__all__ = [
    "ArraySpec",
    "Manifest",
    "SharedFieldStore",
    "attach_array",
    "build_field_model",
]

#: A per-seed payload description: picklable, a few hundred bytes.
Manifest = dict[str, Any]

#: Monotonic store generation within this process.  Successive stores
#: must never reuse segment names: a straggling worker-side resource
#: tracker from a closed pool would otherwise race a fresh same-named
#: segment of the next one.
_GENERATION = count()


@dataclass(frozen=True)
class ArraySpec:
    """Where one array lives: segment name, shape and dtype.

    An empty ``segment`` means a zero-byte array (no segment is created
    for it — ``SharedMemory`` refuses size 0).
    """

    segment: str
    shape: tuple[int, ...]
    dtype: str


class SharedFieldStore:
    """Parent-side registry of shared segments, one batch of per-seed fields.

    ``publish_field`` is idempotent per seed: the first call copies the
    arrays into fresh segments and returns the manifest, later calls
    return the same manifest.  ``close`` releases and unlinks everything;
    it is safe to call twice.
    """

    def __init__(self) -> None:
        self._prefix = f"decor-{os.getpid()}-{next(_GENERATION)}-"
        self._seq = 0
        self._segments: list[shared_memory.SharedMemory] = []
        self._manifests: dict[int, Manifest] = {}
        #: Total bytes posted into shared memory (for telemetry/benchmarks).
        self.shared_bytes = 0

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def segment_names(self) -> list[str]:
        return [seg.name for seg in self._segments]

    def _share(self, array: np.ndarray) -> ArraySpec:
        """Copy one array into a fresh segment; returns its spec."""
        arr = np.ascontiguousarray(array)
        if arr.nbytes == 0:
            return ArraySpec("", arr.shape, arr.dtype.str)
        while True:
            name = f"{self._prefix}{self._seq}"
            self._seq += 1
            try:
                seg = shared_memory.SharedMemory(
                    name=name, create=True, size=arr.nbytes
                )
                break
            except FileExistsError:
                # pid reuse against a leaked segment from a dead process;
                # keep bumping the sequence number until a name is free
                continue
        dst: np.ndarray = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        dst[...] = arr
        self._segments.append(seg)
        self.shared_bytes += arr.nbytes
        return ArraySpec(seg.name, arr.shape, arr.dtype.str)

    def manifest_for(self, seed: int) -> Manifest | None:
        return self._manifests.get(int(seed))

    def publish_field(
        self,
        seed: int,
        field: FieldModel,
        *,
        radii: tuple[float, ...] = (),
        partitions: tuple[tuple[Rect, float], ...] = (),
    ) -> Manifest:
        """Post one seed's field arrays; returns the picklable manifest.

        ``radii`` name the ``rs`` adjacencies to include and
        ``partitions`` the ``(region, cell_size)`` grid assignments —
        both built on (or already cached by) the parent's model, so the
        parent pays each build exactly once for the whole pool instead
        of every worker paying it per process.
        """
        key = int(seed)
        cached = self._manifests.get(key)
        if cached is not None:
            return cached
        adjacency: dict[float, dict[str, Any]] = {}
        for radius in radii:
            csr = field.adjacency(radius)
            adjacency[float(radius)] = {
                "shape": csr.shape,
                "data": self._share(csr.data),
                "indices": self._share(csr.indices),
                "indptr": self._share(csr.indptr),
            }
        cells: dict[tuple, ArraySpec] = {}
        for region, cell_size in partitions:
            cells[_partition_key(region, cell_size, cell_size)] = self._share(
                field.cell_of(region, cell_size)
            )
        manifest: Manifest = {
            "seed": key,
            "backend": field.backend_name,
            "points": self._share(field.points),
            "adjacency": adjacency,
            "cells": cells,
        }
        self._manifests[key] = manifest
        return manifest

    def close(self) -> None:
        """Release and unlink every segment (idempotent)."""
        segments, self._segments = self._segments, []
        self._manifests.clear()
        for seg in segments:
            seg.close()
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


# ---------------------------------------------------------------------------
# worker side: attach views, never unlink
# ---------------------------------------------------------------------------

#: Worker-local attached segments, keyed by name.  The ``SharedMemory``
#: handles must stay referenced for as long as views over them live.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def attach_array(spec: ArraySpec) -> np.ndarray:
    """A read-only ndarray view over a published segment."""
    if not spec.segment:
        out: np.ndarray = np.empty(spec.shape, dtype=np.dtype(spec.dtype))
        out.flags.writeable = False
        return out
    seg = _ATTACHED.get(spec.segment)
    if seg is None:
        seg = shared_memory.SharedMemory(name=spec.segment)
        _ATTACHED[spec.segment] = seg
    view: np.ndarray = np.ndarray(
        spec.shape, dtype=np.dtype(spec.dtype), buffer=seg.buf
    )
    view.flags.writeable = False
    return view


def detach_all() -> None:
    """Close every attached segment (views become invalid)."""
    for name in sorted(_ATTACHED):
        _ATTACHED[name].close()
    _ATTACHED.clear()


def build_field_model(manifest: Manifest) -> FieldModel:
    """Reconstruct a zero-copy :class:`~repro.field.FieldModel` view.

    The CSR matrices are rebuilt over the attached index/data views with
    ``copy=False`` — same dtypes as the parent's canonical matrices, so
    scipy adopts the buffers as-is.
    """
    adjacency: dict[float, sparse.csr_matrix] = {}
    for radius, mats in manifest["adjacency"].items():
        adjacency[float(radius)] = sparse.csr_matrix(
            (
                attach_array(mats["data"]),
                attach_array(mats["indices"]),
                attach_array(mats["indptr"]),
            ),
            shape=mats["shape"],
            copy=False,
        )
    cells = {
        key: attach_array(spec) for key, spec in manifest["cells"].items()
    }
    return FieldModel.from_arrays(
        attach_array(manifest["points"]),
        backend=manifest["backend"],
        adjacency=adjacency,
        cells=cells,
    )
