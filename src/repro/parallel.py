"""Process-parallel fan-out of (series, k, seed) deployment cells.

A figure suite's unit of work is one *cell*: run one series at one
``(k, seed)`` and memoise the result in a
:class:`~repro.experiments.runner.DeploymentCache`.  Cells are mutually
independent — each derives everything from its own seeds — so a sweep can
shard them across worker processes.  :func:`prefill_cache` does exactly
that, and nothing else: it fills the parent's cache so the (serial,
order-sensitive) figure code afterwards sees only cache hits.

Design rules, each load-bearing for reproducibility:

* **Deterministic merge.**  Results are folded back in *submission* order,
  never completion order, so the parent cache — and any OBS telemetry
  merged along the way — is bit-identical to a serial run regardless of
  worker scheduling.
* **Per-worker state.**  Each worker builds its own ``DeploymentCache``
  (hence its own per-seed :class:`~repro.field.FieldModel`) in
  :func:`_worker_init`; nothing mutable is shared.
* **No hidden randomness.**  Workers derive every stochastic choice from
  the cell's seed, exactly as the serial path does.  The PAR001 flow
  check forbids un-seeded RNG construction anywhere in this module, and
  FLOW002 (:mod:`repro.checks.flow`) extends the ban down the whole call
  tree of every worker-submitted function.
* **OBS by seam only.**  Workers capture their telemetry through
  :class:`~repro.obs.bridge.capture_worker_obs` and the parent folds it in
  with :func:`~repro.obs.bridge.merge_worker_obs`; this module never
  enables, disables or resets the global runtime itself (also PAR001).

Serial semantics are the default: ``workers=None`` (or ``<= 1``, or a
single pending cell) runs in-process with no executor, so the parallel
path is pure opt-in via the CLI's ``--workers N``.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.checks import CHECKS
from repro.errors import ConfigurationError
from repro.obs import FREC, OBS, capture_worker_obs, merge_worker_obs

if TYPE_CHECKING:
    from repro.core.result import DeploymentResult
    from repro.experiments.runner import DeploymentCache
    from repro.experiments.setup import ExperimentSetup

__all__ = ["Cell", "normalize_cells", "prefill_cache"]

#: One unit of parallel work: ``(series_name, k, seed)``.
Cell = tuple[str, int, int]

#: Per-process worker state, populated once by :func:`_worker_init`.
_WORKER: dict[str, Any] = {}


def normalize_cells(cells: Iterable[Sequence[Any]]) -> list[Cell]:
    """Canonicalise cell specs: name strings, int k/seed, duplicates dropped.

    Order is preserved (first occurrence wins) — the deterministic merge
    depends on it.  Series objects are accepted in place of their names.

    >>> normalize_cells([("grid-small", 2, 0), ("grid-small", 2.0, 0)])
    [('grid-small', 2, 0)]
    """
    out: dict[Cell, None] = {}
    for spec in cells:
        series, k, seed = spec
        name = getattr(series, "name", series)
        out.setdefault((str(name), int(k), int(seed)), None)
    return list(out)


def _worker_init(
    setup: "ExperimentSetup",
    use_initial: bool,
    backend: str | None,
    obs_enabled: bool,
    checks_enabled: bool,
    frec_enabled: bool = False,
    obs_sample: float | None = None,
) -> None:
    """Build this worker's private cache; runs once per worker process."""
    from repro.experiments.runner import DeploymentCache

    if checks_enabled:
        CHECKS.enable()
    _WORKER["cache"] = DeploymentCache(
        setup, use_initial=use_initial, backend=backend
    )
    _WORKER["obs"] = bool(obs_enabled)
    _WORKER["frec"] = bool(frec_enabled)
    _WORKER["sample"] = obs_sample


def _worker_run_cell(
    cell: Cell,
) -> tuple[Cell, "DeploymentResult", dict[str, Any] | None]:
    """Run one cell in the worker; ship the result plus captured telemetry."""
    cache: "DeploymentCache" = _WORKER["cache"]
    with capture_worker_obs(
        _WORKER["obs"], _WORKER["frec"], sample=_WORKER["sample"]
    ) as cap:
        result = cache.get(*cell)
    return cell, result, cap.payload()


def prefill_cache(
    cache: "DeploymentCache",
    cells: Iterable[Sequence[Any]],
    *,
    workers: int | None = None,
) -> int:
    """Fill ``cache`` with every cell's result; returns the number computed.

    Cells already cached are skipped.  With ``workers`` in ``(None, 0, 1)``
    — or only one cell pending — the work runs serially in-process, which
    is byte-for-byte the behaviour of calling ``cache.get`` in a loop.
    Otherwise a :class:`~concurrent.futures.ProcessPoolExecutor` shards the
    pending cells across ``min(workers, len(pending))`` processes and the
    results are folded back in submission order.

    A worker exception propagates to the caller unchanged (first pending
    cell order); the cache keeps whatever results were absorbed before it.
    """
    if workers is not None and workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    todo = [c for c in normalize_cells(cells) if c not in cache]
    if not todo:
        return 0
    n_workers = 0 if workers is None else int(workers)
    if n_workers <= 1 or len(todo) == 1:
        for cell in todo:
            cache.get(*cell)
        return len(todo)

    obs_enabled = OBS.enabled
    frec_enabled = FREC.enabled
    # the parent's sampling period rides along so worker rows merge into
    # the same timeline; the sampler itself is only touched via the bridge
    obs_sample = (
        OBS.sampler.period if obs_enabled and OBS.sampler is not None else None
    )
    with OBS.span("prefill", cells=len(todo), workers=n_workers):
        with ProcessPoolExecutor(
            max_workers=min(n_workers, len(todo)),
            initializer=_worker_init,
            initargs=(
                cache.setup,
                cache.use_initial,
                cache.backend,
                obs_enabled,
                CHECKS.enabled,
                frec_enabled,
                obs_sample,
            ),
        ) as pool:
            futures: list[Future[Any]] = [
                pool.submit(_worker_run_cell, cell) for cell in todo
            ]
            # submission order, NOT completion order: the merge must be
            # deterministic for bit-identical figures and telemetry
            for future in futures:
                cell, result, payload = future.result()
                cache.absorb(*cell, result)
                if obs_enabled or frec_enabled:
                    merge_worker_obs(payload)
    if OBS.enabled:
        OBS.counter("parallel_cells_total").inc(len(todo))
        OBS.counter("parallel_batches_total").inc()
    return len(todo)
