"""Setup shim enabling legacy editable installs in offline environments
(where the ``wheel`` package is unavailable and PEP 517 builds fail)."""

from setuptools import setup

setup()
