#!/usr/bin/env python
"""Reproduce the paper's illustrative Figures 4-6 as terminal art.

Figure 4: a 100x100 field approximated with 2000 Halton points.
Figure 5: an example DECOR deployment.
Figure 6: the uncovered area left by a disaster disc of radius 24.

Run:  python examples/field_gallery.py
"""

from repro import DecorPlanner, Rect, SensorSpec, area_failure
from repro.viz import render_coverage, render_deployment, render_points


def main() -> None:
    region = Rect.square(100.0)
    spec = SensorSpec(4.0, 8.0)
    planner = DecorPlanner(region, spec, n_points=2000, seed=0)

    print(render_points(
        region, planner.field_points, width=72, height=28,
        title="Figure 4: a field approximated with 2000 Halton points",
    ))

    result = planner.deploy(1, method="grid", cell_size=5.0)
    print()
    print(render_deployment(
        region, planner.field_points, result.deployment.alive_positions(),
        width=72, height=28,
        title=f"Figure 5: DECOR deployment (grid 5x5, k=1, "
              f"{result.total_alive} nodes = 'o')",
    ))

    event = area_failure(result.deployment, region.center, 24.0)
    survivor = result.deployment.copy()
    survivor.fail(event.node_ids)
    print()
    print(render_coverage(
        region, survivor.alive_positions(), spec.rs, k=1,
        width=72, height=28,
        title=f"Figure 6: an uncovered area ({event.n_failed} nodes lost, "
              "'!' = uncovered)",
    ))


if __name__ == "__main__":
    main()
