#!/usr/bin/env python
"""Zoned reliability requirements — per-point k (a §2.1 generalisation).

The paper derives one global k from one user reliability target.  Real
missions are zoned: this example protects a wildfire-prone ravine at
99.99% detection reliability and a campground at 99.9%, while the rest of
the plot settles for any coverage at all.  The greedy satisfies every
point's own requirement, spending nodes only where the mission demands
them — compare the bill against blanket-k deployments.

Run:  python examples/zoned_reliability.py
"""

import numpy as np

from repro import Rect, SensorSpec
from repro.core import CoverageZone, requirement_map, variable_k_greedy
from repro.discrepancy import field_points
from repro.network import required_k


def main() -> None:
    region = Rect.square(80.0)
    pts = field_points(region, 1280)
    spec = SensorSpec(4.0, 8.0)
    q = 0.1  # per-sensor failure probability

    ravine = CoverageZone(center=(20.0, 60.0), radius=12.0,
                          target_reliability=0.9999)
    campground = CoverageZone(center=(60.0, 25.0), radius=9.0,
                              target_reliability=0.999)
    req = requirement_map(pts, [ravine, campground], q=q)

    print("zoned requirements (q = 0.1):")
    print(f"  ravine     -> k = {required_k(0.9999, q)}  "
          f"({np.count_nonzero(req == 4)} points)")
    print(f"  campground -> k = {required_k(0.999, q)}  "
          f"({np.count_nonzero(req == 3)} points)")
    print(f"  elsewhere  -> k = 1  ({np.count_nonzero(req == 1)} points)")

    zoned = variable_k_greedy(pts, spec, req)
    print(f"\nzoned deployment: {zoned.added_count} nodes, "
          f"all requirements met: {zoned.satisfied()}")

    for k in (1, 4):
        uniform = variable_k_greedy(pts, spec, np.full(len(pts), k))
        rel = "meets every zone" if k == 4 else "misses both zones"
        print(f"uniform k = {k}: {uniform.added_count} nodes ({rel})")

    print("\nzoning pays: the mission-grade deployment costs a fraction of")
    print("blanket k = 4 while holding the exact same guarantee where it")
    print("matters — Eq. (1) works unchanged with a per-point requirement.")


if __name__ == "__main__":
    main()
