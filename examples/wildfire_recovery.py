#!/usr/bin/env python
"""Wild-fire monitoring with correlated failures (paper motivation #1).

A temperature-sensing network watches a forest plot.  A fire front destroys
the sensors in the burning region (an area failure — the paper's §2.1
geographic failure model); the network must detect the loss and restore
k-coverage so the next flare-up is still caught by multiple sensors.

The example also contrasts an *uncorrelated* failure of the same size with
the area failure: correlated failures concentrate damage and hurt coverage
far more — the reason deploying "k nodes at the same spot" is not a valid
k-coverage strategy (§2).

Run:  python examples/wildfire_recovery.py
"""

import numpy as np

from repro import DecorPlanner, Rect, SensorSpec, area_failure, random_failures
from repro.network import CoverageState
from repro.viz import render_coverage


def coverage_after(planner, deployment, event, k):
    dep = deployment.copy()
    dep.fail(event.node_ids)
    cov = CoverageState.from_deployment(
        planner.field_points, planner.spec.rs, dep
    )
    return cov.covered_fraction(k), dep


def main() -> None:
    k = 3  # a fire alarm should be confirmed by 3 independent sensors
    planner = DecorPlanner(
        Rect.square(80.0), SensorSpec(4.0, 8.0), n_points=1280, seed=42
    )
    result = planner.deploy(k, method="grid", cell_size=5.0)
    print(f"forest plot instrumented with {result.total_alive} sensors (k={k})")

    # the fire front: everything within 18 m of the ignition point burns
    ignition = np.array([55.0, 30.0])
    fire = area_failure(result.deployment, ignition, 18.0)
    frac_fire, burned = coverage_after(planner, result.deployment, fire, k)
    print(f"\nfire at {ignition} destroys {fire.n_failed} sensors")
    print(f"  {k}-coverage after fire: {frac_fire:.1%}")

    # the same number of *uncorrelated* losses barely dents k-coverage
    rng = np.random.default_rng(0)
    uncorrelated = random_failures(
        result.deployment, rng,
        fraction=fire.n_failed / result.deployment.n_alive,
    )
    frac_rand, _ = coverage_after(planner, result.deployment, uncorrelated, k)
    print(f"  {k}-coverage after {uncorrelated.n_failed} random failures: "
          f"{frac_rand:.1%}   <- correlated damage is the dangerous kind")

    print("\nburned region ('!' = not even 1-covered):")
    print(render_coverage(planner.region, burned.alive_positions(),
                          planner.spec.rs, k=1, width=64, height=24,
                          title=""))

    report = planner.restore_after(result, fire, method="grid", cell_size=5.0)
    print(f"restoration deployed {report.extra_nodes} replacement sensors; "
          f"{k}-coverage back to {report.covered_after_repair:.0%}")
    print(f"(messages: the repair run sent "
          f"{report.repair.messages.total} inter-leader notifications)")


if __name__ == "__main__":
    main()
