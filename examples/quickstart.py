#!/usr/bin/env python
"""Quickstart: k-cover a field, inspect the deployment, repair a failure.

Walks the library's main loop in ~40 lines:

1. translate a user reliability requirement into a coverage degree k,
2. approximate the monitored area with Halton points,
3. deploy with distributed (Voronoi) DECOR,
4. evaluate the deployment,
5. break it with a disaster and restore it,
6. read the built-in trace of where the time went.

Run:  python examples/quickstart.py
"""

from repro import DecorPlanner, Rect, SensorSpec, area_failure, required_k
from repro.analysis import evaluate_deployment
from repro.experiments.summary import summarize_trace
from repro.obs import OBS


def main() -> None:
    # 0. record what the run does (spans, events, counters); everything
    #    below behaves bit-identically with this line removed
    OBS.enable(fresh=True)
    # 1. the user wants points monitored with 99.9% reliability when each
    #    sensor independently fails with probability 10%
    k = required_k(target_reliability=0.999, q=0.10)
    print(f"reliability target 0.999 at q=0.1  ->  k = {k}")

    # 2.-3. a 60x60 m field, sensing radius 4 m, radio range 8 m
    planner = DecorPlanner(
        Rect.square(60.0),
        SensorSpec(sensing_radius=4.0, communication_radius=8.0),
        n_points=720,           # same point density as the paper's setup
        seed=7,
    )
    result = planner.deploy(k, method="voronoi")
    print(f"deployed {result.total_alive} nodes "
          f"({result.final_covered_fraction():.0%} of points {k}-covered)")

    # 4. quality report
    metrics = evaluate_deployment(result, area=planner.region.area)
    print(f"disc-packing lower bound: {metrics.lower_bound} nodes "
          f"(overprovision {metrics.overprovision:.2f}x, "
          f"redundancy {metrics.redundancy:.1%})")

    # 5. a disaster wipes out everything within 12 m of the field center
    event = area_failure(result.deployment, planner.region.center, 12.0)
    report = planner.restore_after(result, event, method="voronoi")
    print(f"disaster killed {event.n_failed} nodes, coverage fell to "
          f"{report.covered_after_failure:.0%}")
    print(f"restoration added {report.extra_nodes} nodes, coverage back to "
          f"{report.covered_after_repair:.0%}")

    # 6. the observability layer watched all of it
    OBS.disable()
    print()
    print(summarize_trace(OBS.tracer).format())
    placed = OBS.metrics.value("decor_placements_total", method="voronoi")
    print(f"metrics: {placed} voronoi placements recorded")
    OBS.reset()


if __name__ == "__main__":
    main()
