#!/usr/bin/env python
"""Sleep scheduling on a k-covered network (paper motivation #3).

"When k nodes are covering a point, we have the option of putting some of
them to sleep...  k-coverage leads to significant energy savings and
increases the lifetime for the network."

This example deploys at several k, partitions each deployment into disjoint
sleep shifts that each 1-cover the whole field on their own, and reports
the lifetime multiplier.  It then simulates rotating through the shifts and
verifies the field never loses coverage.

Run:  python examples/network_lifetime.py
"""

import numpy as np

from repro import DecorPlanner, Rect, SensorSpec
from repro.analysis import sleep_shifts
from repro.network import CoverageState


def main() -> None:
    region = Rect.square(50.0)
    spec = SensorSpec(4.0, 8.0)

    print(f"{'k':>3} {'nodes':>7} {'shifts':>7} {'lifetime gain':>14}")
    for k in (1, 2, 3, 4, 5):
        planner = DecorPlanner(region, spec, n_points=500, seed=3)
        result = planner.deploy(k, method="voronoi")
        shifts = sleep_shifts(result.coverage, k_active=1)
        print(f"{k:>3} {result.total_alive:>7} {len(shifts):>7} "
              f"{len(shifts):>13}x")

        # verify by simulation: run each shift alone, field stays 1-covered
        for shift in shifts:
            cov = CoverageState(planner.field_points, spec.rs)
            for key in shift:
                cov.add_sensor(key, result.deployment.position_of(key))
            assert cov.is_fully_covered(1), "a shift dropped coverage!"

    print("\nEvery shift 1-covers the field alone: running one shift at a")
    print("time multiplies battery life by the shift count while keeping")
    print("the area continuously monitored.")


if __name__ == "__main__":
    main()
