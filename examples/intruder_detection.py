#!/usr/bin/env python
"""Intruder detection and localisation accuracy (paper motivation #2).

"The ability of the network to detect the intruder and the accuracy of the
detection increases with the number of nodes monitoring the area."  This
example makes that quantitative: an intruder walks a path through fields
deployed at k = 1, 3 and 5, every covering sensor reports a noisy range,
and the fused position estimate's error shrinks as k grows — while the
fraction of the path with no usable fix at all collapses.

Run:  python examples/intruder_detection.py
"""

import numpy as np

from repro import DecorPlanner, Rect, SensorSpec
from repro.analysis import (
    detection_counts,
    localization_errors,
    localize_trajectory,
)


def intruder_path(region: Rect, n: int = 150) -> np.ndarray:
    """A meandering crossing of the field."""
    t = np.linspace(0.0, 1.0, n)
    x = region.x0 + 3.0 + t * (region.width - 6.0)
    y = region.center[1] + 0.35 * region.height * np.sin(3.0 * np.pi * t)
    return np.column_stack([x, y])


def main() -> None:
    region = Rect.square(60.0)
    spec = SensorSpec(4.0, 8.0)
    path = intruder_path(region)
    noise = 0.4  # ranging noise (m), ~10% of the sensing radius

    print(f"{'k':>3} {'sensors':>8} {'min det':>8} {'fix rate':>9} "
          f"{'median err (m)':>15}")
    for k in (1, 3, 5):
        planner = DecorPlanner(region, spec, n_points=720, seed=5)
        result = planner.deploy(k, method="centralized")
        sensors = result.deployment.alive_positions()

        counts = detection_counts(sensors, path, spec.rs)
        medians = []
        fix_rates = []
        for seed in range(5):
            est, _ = localize_trajectory(
                sensors, path, spec.rs, np.random.default_rng(seed),
                range_noise_std=noise,
            )
            err = localization_errors(est, path)
            fix_rates.append(float(np.mean(~np.isnan(err))))
            medians.append(float(np.nanmedian(err)))
        print(f"{k:>3} {len(sensors):>8} {counts.min():>8} "
              f"{np.mean(fix_rates):>9.0%} {np.median(medians):>15.3f}")

    print("\nk-coverage guarantees every path point is seen by >= k sensors;")
    print("more detectors -> more trilateration anchors -> tighter fixes.")


if __name__ == "__main__":
    main()
