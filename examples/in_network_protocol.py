#!/usr/bin/env python
"""Run grid DECOR as a real packet-level protocol (§3 end to end).

This example exercises the distributed-systems substrate rather than the
analytic fast path: cell leaders are elected by the rotating randomised
election, they watch each other with the Tc-periodic heartbeat failure
detector, and the coverage algorithm itself runs as per-leader state
machines exchanging PLACE_NOTIFY messages over the unit-disc radio.

It then verifies the packet-level run places exactly the same nodes as the
analytic model, and shows the heartbeat detector spotting a crashed leader.

Run:  python examples/in_network_protocol.py
"""

import numpy as np

from repro import Rect, SensorSpec, grid_decor
from repro.core.protocols import run_grid_protocol
from repro.discrepancy import field_points
from repro.experiments.summary import summarize_trace
from repro.obs import OBS
from repro.sim import (
    CellElectionNode,
    ElectionConfig,
    EnergyModel,
    HeartbeatConfig,
    HeartbeatNode,
    Radio,
    Simulator,
)


def main() -> None:
    region = Rect.square(40.0)
    pts = field_points(region, 320)
    spec = SensorSpec(4.0, 15.0)
    k = 2

    # --- the coverage protocol itself -------------------------------------
    OBS.enable(fresh=True)  # trace the packet-level run
    report = run_grid_protocol(pts, spec, k, region, cell_size=5.0)
    analytic = grid_decor(pts, spec, k, region, cell_size=5.0)
    same = bool(np.allclose(report.placed_positions, analytic.trace.positions))
    print(f"packet-level run: {len(report.placed_point_indices)} placements, "
          f"{report.notify_messages} border messages, "
          f"sim time {report.sim_time:.1f}")
    print(f"matches the synchronous-rounds model exactly: {same}")

    OBS.disable()
    sent = OBS.metrics.value("radio_messages_sent_total", protocol="grid")
    print()
    print(summarize_trace(OBS.tracer).format())
    print(f"metrics: the packet radio carried {sent} messages\n")
    OBS.reset()

    # --- leader election with rotation -------------------------------------
    sim = Simulator()
    radio = Radio(sim, rc=50.0)
    config = ElectionConfig(rotation_period=10.0, settle_delay=0.1)
    members = [
        CellElectionNode(i, sim, radio, [float(i), 0.0], cell_id=0, config=config)
        for i in range(5)
    ]
    for m in members:
        m.start(delay=0.001 * m.node_id)
    sim.run(until=120.0)
    history = members[0].leadership_history
    print(f"\nleader election: {len(history)} rounds, "
          f"{len(set(history))} distinct leaders "
          f"(rotation spreads the load)")
    print(f"radio energy imbalance across members: "
          f"{EnergyModel().imbalance(radio.stats):.2f} (1.0 = perfectly even)")

    # --- heartbeat failure detection ---------------------------------------
    sim2 = Simulator()
    radio2 = Radio(sim2, rc=20.0)
    hb_cfg = HeartbeatConfig(period=1.0, timeout_factor=2.5)
    rng = np.random.default_rng(0)
    suspicions: list[tuple[int, int]] = []
    watchers = [
        HeartbeatNode(i, sim2, radio2, [3.0 * i, 0.0], hb_cfg, rng,
                      on_suspect=lambda a, b: suspicions.append((a, b)))
        for i in range(4)
    ]
    for w in watchers:
        w.start(delay=0.05 * w.node_id)
    sim2.run(until=5.0)
    crash_time = sim2.now
    watchers[2].fail()
    sim2.run(until=20.0)
    detectors = sorted(a for a, b in suspicions if b == 2)
    print(f"\nheartbeats: node 2 crashed at t={crash_time:.0f}; "
          f"neighbours {detectors} suspected it within "
          f"{hb_cfg.timeout + hb_cfg.period:.1f} time units")
    print("(this is the trigger that starts a DECOR restoration round)")


if __name__ == "__main__":
    main()
