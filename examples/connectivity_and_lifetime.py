#!/usr/bin/env python
"""Connectivity repair and battery lifetime — the §2 corollary in practice.

Part 1 (connectivity): the paper proves coverage implies connectivity only
when ``rc >= 2 rs``.  Deploy with a short radio (``rc = rs``): the field is
fully sensed but the network is shattered into islands that cannot report.
``connect_components`` stitches it together with relay nodes.

Part 2 (lifetime): a k = 3 deployment is partitioned into sleep shifts and
the battery simulation compares always-on vs shift rotation.

Run:  python examples/connectivity_and_lifetime.py
"""

import numpy as np

from repro import DecorPlanner, Rect, SensorSpec
from repro.network import connect_components
from repro.network.connectivity import connected_components_count, is_connected
from repro.sim import BatteryConfig, simulate_lifetime


def main() -> None:
    # --- Part 1: coverage without connectivity ----------------------------
    region = Rect.square(60.0)
    short_radio = SensorSpec(sensing_radius=4.0, communication_radius=4.0)
    planner = DecorPlanner(region, short_radio, n_points=720, seed=9)
    result = planner.deploy(1, method="centralized")
    pos = result.deployment.alive_positions()
    n_comp = connected_components_count(pos, short_radio.rc)
    print(f"rc = rs = 4: field 100% sensed by {len(pos)} nodes, but the "
          f"radio graph has {n_comp} disconnected islands")

    plan = connect_components(pos, short_radio.rc)
    merged = np.vstack([pos, plan.relay_positions]) if plan.n_relays else pos
    print(f"relay repair: {plan.n_relays} relays across "
          f"{len(plan.bridged_pairs)} bridges -> connected: "
          f"{is_connected(merged, short_radio.rc)}")

    long_radio = SensorSpec(4.0, 8.0)
    planner2 = DecorPlanner(region, long_radio, n_points=720, seed=9)
    result2 = planner2.deploy(1, method="centralized")
    print(f"rc = 2 rs = 8 (the paper's corollary condition): connected out "
          f"of the box: "
          f"{is_connected(result2.deployment.alive_positions(), long_radio.rc)}")

    # --- Part 2: lifetime via sleep rotation -------------------------------
    print()
    planner3 = DecorPlanner(region, long_radio, n_points=720, seed=9)
    k3 = planner3.deploy(3, method="voronoi")
    config = BatteryConfig(capacity=1000.0, sense_cost=1.0, epoch=1.0)
    on = simulate_lifetime(k3.coverage, config, policy="always-on")
    rot = simulate_lifetime(k3.coverage, config, policy="shift-rotation")
    print(f"k = 3 deployment of {k3.total_alive} nodes, battery = "
          f"{config.epochs_per_node} awake epochs:")
    print(f"  always-on lifetime    : {on.lifetime:.0f} time units")
    print(f"  shift rotation        : {rot.lifetime:.0f} time units "
          f"({rot.n_shifts} disjoint shifts, {rot.lifetime/on.lifetime:.1f}x)")
    print("\nk-coverage buys exactly the spare sets that sleep scheduling")
    print("turns into lifetime — the paper's third motivation, measured.")


if __name__ == "__main__":
    main()
