#!/usr/bin/env python
"""Cost-aware deployment with a heterogeneous sensor catalog (paper §2).

The paper notes its solution works with varying sensing radii.  This
example takes the procurement view: the operator can buy cheap short-range
motes or pricey long-range sensors, and the mixed greedy picks, placement
by placement, whichever gives the most still-needed coverage per dollar.

Sweeping the long-range price shows the fleet composition pivoting from
all-big to all-small — the knee tells you the break-even price.

Run:  python examples/heterogeneous_fleet.py
"""

import numpy as np

from repro import Rect
from repro.core import mixed_centralized_greedy
from repro.discrepancy import field_points
from repro.network import SensorType


def main() -> None:
    region = Rect.square(60.0)
    pts = field_points(region, 720)
    k = 2
    small = SensorType("mote", sensing_radius=4.0, communication_radius=8.0,
                       cost=1.0)

    print(f"k = {k} coverage of a 60x60 field, mote = 1.0 unit, "
          f"long-range sensor (rs = 8) priced from 1 to 12 units\n")
    print(f"{'big price':>10} {'motes':>7} {'big':>5} {'fleet cost':>11} "
          f"{'cost if motes only':>19}")

    motes_only = mixed_centralized_greedy(pts, [small], k)
    for price in (1.0, 2.0, 3.0, 4.5, 6.0, 9.0, 12.0):
        big = SensorType("ranger", sensing_radius=8.0,
                         communication_radius=16.0, cost=price)
        result = mixed_centralized_greedy(pts, [small, big], k)
        counts = result.count_by_type()
        print(f"{price:>10.1f} {counts['mote']:>7} {counts['ranger']:>5} "
              f"{result.total_cost:>11.1f} {motes_only.total_cost:>19.1f}")

    print("\nA long-range disc covers 4x the area; once its price passes the")
    print("benefit-per-cost break-even the greedy stops buying it entirely.")

    # survivors of mixed hardware can seed a restoration too
    result = mixed_centralized_greedy(pts, [small], k)
    survivors = [
        (result.deployment.position_of(int(i)), 4.0)
        for i in result.deployment.alive_ids()[::2]
    ]
    topped_up = mixed_centralized_greedy(pts, [small], k, existing=survivors)
    print(f"\nrestoration demo: keeping every other node as a survivor, the "
          f"repair buys only {topped_up.added_count} new motes "
          f"(vs {result.added_count} from scratch).")


if __name__ == "__main__":
    main()
