#!/usr/bin/env python
"""Mobile-robot dispatch of a disaster repair (paper §1/§3).

DECOR tells you *where* the replacement sensors go; a repair is only done
when a robot has physically carried them there.  This example breaks a
network with a disaster disc, computes the DECOR repair, and plans the
delivery tours for fleets of 1-4 robots from a corner depot — reporting
the makespan (the time the field stays under-covered) and writing an SVG
of the scene.

Run:  python examples/robot_dispatch.py
"""

import numpy as np

from repro import DecorPlanner, Rect, SensorSpec, area_failure
from repro.analysis import plan_dispatch
from repro.viz import save_svg, svg_field


def main() -> None:
    region = Rect.square(80.0)
    planner = DecorPlanner(region, SensorSpec(4.0, 8.0), n_points=1280, seed=11)
    result = planner.deploy(2, method="voronoi")
    event = area_failure(result.deployment, np.array([50.0, 45.0]), 16.0)
    report = planner.restore_after(result, event, method="voronoi")
    sites = report.repair.trace.positions
    depot = np.array([0.0, 0.0])

    print(f"disaster destroyed {event.n_failed} sensors; repair needs "
          f"{len(sites)} replacements\n")
    print(f"{'robots':>7} {'makespan':>9} {'total distance':>15} "
          f"{'longest tour':>13}")
    plans = {}
    for n_robots in (1, 2, 3, 4):
        plan = plan_dispatch(sites, depot, n_robots=n_robots, speed=1.0)
        plans[n_robots] = plan
        print(f"{n_robots:>7} {plan.makespan:>9.0f} "
              f"{plan.total_distance:>15.0f} {max(plan.distances):>13.0f}")

    best = plans[4]
    tours_xy = [sites[tour] for tour in best.tours if tour.size]
    doc = svg_field(
        region,
        field_points=planner.field_points,
        sensors=sites,
        rs=4.0,
        disaster=(np.array([50.0, 45.0]), 16.0),
        tours=tours_xy,
        depot=depot,
        title="repair dispatch, 4 robots",
    )
    out = "robot_dispatch.svg"
    save_svg(out, doc)
    print(f"\nwrote {out} (replacement sites, disaster outline, 4 tours)")
    print("makespan shrinks with the fleet, but with diminishing returns:")
    print("every robot pays the same commute from the depot to the disaster")
    print("zone, so total distance grows while the critical path saturates")
    print("near (commute + its sector).")


if __name__ == "__main__":
    main()
